(* Property tests for the versioned, checksummed synopsis container:
   canonical byte-identical saves, estimate-preserving round-trips over
   a full generated workload, and clean rejection of corrupted,
   truncated, wrong-version and legacy files. *)

module Doc = Xpest_xml.Doc
module Pattern = Xpest_xpath.Pattern
module Summary = Xpest_synopsis.Summary
module Synopsis_io = Xpest_synopsis.Synopsis_io
module Wire = Xpest_synopsis.Wire
module Estimator = Xpest_estimator.Estimator
module Workload = Xpest_workload.Workload
module Registry = Xpest_datasets.Registry
module Prng = Xpest_util.Prng

let temp_file () = Filename.temp_file "xpest_synopsis_io" ".bin"

let with_file bytes f =
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc bytes;
      close_out oc;
      f path)

let load_error bytes =
  with_file bytes (fun path ->
      match Synopsis_io.load_result path with
      | Ok _ -> Alcotest.fail "malformed synopsis accepted"
      | Error msg -> msg)

let small_doc = lazy (Registry.generate ~scale:0.02 ~seed:11 Registry.Xmark)

(* ------------------------------------------------------------------ *)
(* Round-trips.                                                        *)

let test_save_load_save_byte_identical () =
  List.iter
    (fun (p_variance, o_variance) ->
      let summary =
        Summary.build ~p_variance ~o_variance (Lazy.force small_doc)
      in
      let bytes0 = Summary.encode summary in
      let bytes1 = Summary.encode (Summary.decode bytes0) in
      Alcotest.(check int)
        (Printf.sprintf "size (v=%g/%g)" p_variance o_variance)
        (String.length bytes0) (String.length bytes1);
      Alcotest.(check bool)
        (Printf.sprintf "bytes (v=%g/%g)" p_variance o_variance)
        true
        (String.equal bytes0 bytes1))
    [ (0.0, 0.0); (2.0, 3.0) ]

let test_save_is_canonical () =
  (* Two independently built summaries of the same document must
     serialize identically (hashtable iteration order must not leak
     into the file). *)
  let doc = Lazy.force small_doc in
  let bytes0 = Summary.encode (Summary.build doc) in
  let bytes1 = Summary.encode (Summary.build doc) in
  Alcotest.(check bool) "identical" true (String.equal bytes0 bytes1)

let workload_of doc =
  let config =
    { Workload.default_config with num_simple = 400; num_branch = 400 }
  in
  let w = Workload.generate ~config doc in
  w.Workload.simple @ w.Workload.branch @ w.Workload.order_branch_target
  @ w.Workload.order_trunk_target

let test_loaded_estimates_match_on_workload () =
  let doc = Lazy.force small_doc in
  let summary = Summary.build doc in
  let loaded = Summary.decode (Summary.encode summary) in
  let est0 = Estimator.create summary in
  let est1 = Estimator.create loaded in
  let items = workload_of doc in
  Alcotest.(check bool) "workload is non-trivial" true (List.length items > 50);
  List.iter
    (fun (it : Workload.item) ->
      Alcotest.(check (float 1e-9))
        (Pattern.to_string it.pattern)
        (Estimator.estimate est0 it.pattern)
        (Estimator.estimate est1 it.pattern))
    items

(* ------------------------------------------------------------------ *)
(* Header / info.                                                      *)

let test_info_reports_sections () =
  let summary = Summary.build (Lazy.force small_doc) in
  let bytes = Summary.encode summary in
  with_file bytes (fun path ->
      let i = Synopsis_io.info path in
      Alcotest.(check int) "version" Wire.format_version i.Synopsis_io.version;
      Alcotest.(check bool) "supported" true i.Synopsis_io.supported;
      Alcotest.(check bool) "checksum ok" true i.Synopsis_io.checksum_ok;
      Alcotest.(check int) "total bytes" (String.length bytes)
        i.Synopsis_io.total_bytes;
      Alcotest.(check (list string))
        "section names"
        [
          "meta"; "encoding_table"; "path_ids"; "tags"; "p_histograms";
          "o_histograms";
        ]
        (List.map fst i.Synopsis_io.sections);
      let payload =
        List.fold_left (fun acc (_, n) -> acc + n) 0 i.Synopsis_io.sections
      in
      Alcotest.(check int) "sections + overhead = file size"
        (String.length bytes)
        (payload + Synopsis_io.overhead_bytes i))

(* ------------------------------------------------------------------ *)
(* Rejection of malformed files.                                       *)

let contains ~sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_reject_corrupted_anywhere () =
  let bytes = Summary.encode (Summary.build (Lazy.force small_doc)) in
  let rng = Prng.create 42 in
  (* Flip one random byte at 50 positions spread over the file; every
     flip must be rejected (header flips change magic/version/checksum,
     body flips break the checksum). *)
  for _ = 1 to 50 do
    let pos = Prng.int rng (String.length bytes) in
    let corrupted = Bytes.of_string bytes in
    Bytes.set corrupted pos
      (Char.chr (Char.code (Bytes.get corrupted pos) lxor (1 lsl Prng.int rng 8)));
    let msg = load_error (Bytes.to_string corrupted) in
    Alcotest.(check bool)
      (Printf.sprintf "flip at %d rejected cleanly (%s)" pos msg)
      true
      (String.length msg > 0)
  done

let test_reject_truncation_everywhere () =
  let bytes = Summary.encode (Summary.build (Lazy.force small_doc)) in
  let n = String.length bytes in
  List.iter
    (fun len ->
      let msg = load_error (String.sub bytes 0 len) in
      Alcotest.(check bool)
        (Printf.sprintf "truncated to %d rejected (%s)" len msg)
        true
        (String.length msg > 0))
    [ 0; 1; 8; 16; 17; n / 4; n / 2; n - 1 ]

let test_reject_wrong_version () =
  let bytes = Summary.encode (Summary.build (Lazy.force small_doc)) in
  let wrong = Bytes.of_string bytes in
  Bytes.set wrong 8 (Char.chr 9);
  let msg = load_error (Bytes.to_string wrong) in
  Alcotest.(check bool)
    (Printf.sprintf "mentions version (%s)" msg)
    true
    (contains ~sub:"version" msg);
  (* info still parses the header and reports it unsupported *)
  with_file (Bytes.to_string wrong) (fun path ->
      let i = Synopsis_io.info path in
      Alcotest.(check int) "version" 9 i.Synopsis_io.version;
      Alcotest.(check bool) "unsupported" false i.Synopsis_io.supported)

let test_reject_legacy_magic () =
  let msg = load_error "XPESTSYN2\x00\x00\x00\x00\x00\x00\x00\x00" in
  Alcotest.(check bool)
    (Printf.sprintf "mentions legacy (%s)" msg)
    true
    (contains ~sub:"legacy" msg)

let test_reject_garbage () =
  List.iter
    (fun bytes ->
      let msg = load_error bytes in
      Alcotest.(check bool) "rejected" true (String.length msg > 0))
    [ ""; "x"; "not a synopsis at all, but long enough to have a header" ]

(* ------------------------------------------------------------------ *)
(* Typed rejection: exhaustive single-bit damage.                      *)

module E = Xpest_util.Xpest_error
module Manifest = Xpest_synopsis.Manifest

(* A deliberately small synopsis so flipping every byte stays cheap. *)
let tiny_bytes =
  lazy
    (Summary.encode
       (Summary.build (Registry.generate ~scale:0.01 ~seed:7 Registry.Ssplays)))

let load_typed_of bytes =
  with_file bytes (fun path -> Synopsis_io.load_typed path)

(* Every single-bit flip, at every byte of the file, must come back as
   a typed Corrupt — never an Ok summary (wrong estimates), never a
   crash, never another error class. *)
let test_typed_corrupt_every_byte () =
  let bytes = Lazy.force tiny_bytes in
  for pos = 0 to String.length bytes - 1 do
    let corrupted = Bytes.of_string bytes in
    Bytes.set corrupted pos
      (Char.chr (Char.code (Bytes.get corrupted pos) lxor (1 lsl (pos mod 8))));
    match load_typed_of (Bytes.to_string corrupted) with
    | Ok _ -> Alcotest.failf "flip at byte %d decoded to a summary" pos
    | Error (E.Corrupt { section; _ }) ->
        (* best-effort attribution: damage inside the 17-byte header
           (magic, version, stored checksum) resolves to "header" or,
           for the stored checksum itself, a "body" mismatch; damage
           past it always fails the body checksum *)
        let expected = if pos < 9 then [ "header" ] else [ "body" ] in
        Alcotest.(check bool)
          (Printf.sprintf "flip at byte %d attributed (%s)" pos section)
          true
          (List.mem section expected)
    | Error e ->
        Alcotest.failf "flip at byte %d: wrong error class %s" pos
          (E.to_string e)
  done

let test_typed_corrupt_truncation () =
  let bytes = Lazy.force tiny_bytes in
  let n = String.length bytes in
  let len = ref 0 in
  while !len < n do
    (match load_typed_of (String.sub bytes 0 !len) with
    | Ok _ -> Alcotest.failf "truncation to %d decoded to a summary" !len
    | Error (E.Corrupt _) -> ()
    | Error e ->
        Alcotest.failf "truncation to %d: wrong error class %s" !len
          (E.to_string e));
    len := !len + 7
  done

let test_typed_io_failure () =
  match Synopsis_io.load_typed "/nonexistent/xpest/no.syn" with
  | Ok _ -> Alcotest.fail "missing file loaded"
  | Error (E.Io_failure { path; _ }) ->
      Alcotest.(check string) "path carried" "/nonexistent/xpest/no.syn" path
  | Error e -> Alcotest.failf "wrong error class: %s" (E.to_string e)

(* The manifest shares the container, so it inherits the same
   guarantee: a flip anywhere in a manifest file is a typed Corrupt. *)
let test_typed_manifest_every_byte () =
  let m =
    List.fold_left
      (fun m e -> Manifest.add m e)
      Manifest.empty
      [
        {
          Manifest.dataset = "ssplays";
          variance = 0.0;
          file = "ssplays_v0.syn";
          bytes = 4432;
          checksum = 0xb8d459ee1eb801a0L;
        };
        {
          Manifest.dataset = "dblp";
          variance = 2.5;
          file = "dblp_v2.5.syn";
          bytes = 912;
          checksum = 0x0123456789abcdefL;
        };
      ]
  in
  let bytes = Manifest.encode m in
  for pos = 0 to String.length bytes - 1 do
    let corrupted = Bytes.of_string bytes in
    Bytes.set corrupted pos
      (Char.chr (Char.code (Bytes.get corrupted pos) lxor (1 lsl (pos mod 8))));
    with_file (Bytes.to_string corrupted) (fun path ->
        match Manifest.load_typed path with
        | Ok _ -> Alcotest.failf "manifest flip at byte %d accepted" pos
        | Error (E.Corrupt _) -> ()
        | Error e ->
            Alcotest.failf "manifest flip at byte %d: wrong class %s" pos
              (E.to_string e))
  done

let test_reject_missing_section () =
  (* A container that checksums correctly but lacks a section: the
     decoder must fail by name, not by exhausting the reader. *)
  let bytes = Wire.encode_container [ ("meta", "\x00") ] in
  let msg = load_error bytes in
  Alcotest.(check bool)
    (Printf.sprintf "mentions missing section (%s)" msg)
    true
    (contains ~sub:"section" msg)

let () =
  Alcotest.run "synopsis_io"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "save-load-save is byte-identical" `Quick
            test_save_load_save_byte_identical;
          Alcotest.test_case "saves are canonical" `Quick test_save_is_canonical;
          Alcotest.test_case "loaded estimates match on a full workload" `Quick
            test_loaded_estimates_match_on_workload;
        ] );
      ( "info",
        [
          Alcotest.test_case "reports version and per-section sizes" `Quick
            test_info_reports_sections;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "corrupted bytes" `Quick
            test_reject_corrupted_anywhere;
          Alcotest.test_case "truncation" `Quick test_reject_truncation_everywhere;
          Alcotest.test_case "wrong version" `Quick test_reject_wrong_version;
          Alcotest.test_case "legacy magic" `Quick test_reject_legacy_magic;
          Alcotest.test_case "garbage" `Quick test_reject_garbage;
          Alcotest.test_case "missing section" `Quick test_reject_missing_section;
        ] );
      ( "typed_rejection",
        [
          Alcotest.test_case "every byte flip is Corrupt" `Quick
            test_typed_corrupt_every_byte;
          Alcotest.test_case "every truncation is Corrupt" `Quick
            test_typed_corrupt_truncation;
          Alcotest.test_case "missing file is Io_failure" `Quick
            test_typed_io_failure;
          Alcotest.test_case "manifest flips are Corrupt" `Quick
            test_typed_manifest_every_byte;
        ] );
    ]
