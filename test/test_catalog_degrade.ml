(* Degradation-ladder tests for the serving catalog: the three-rung
   answer tier (Exact -> resident-sibling Fallback -> pinned Sketch),
   its byte-budgeted always-resident sketch region, and the contracts
   the ladder must keep:

   - total blackout coverage: with every summary of a dataset failing
     (and the breaker open), every well-formed query is still answered,
     from the Sketch tier, never as an error — bit-identically at any
     --domains / --load-domains;
   - the ladder is inert when healthy: a sketch-armed catalog over
     healthy storage is byte-identical to a sketch-free one;
   - the pinned sketch region never exceeds its byte budget;
   - chaos: under injected storage faults every failed acquire lands
     on a rung (never a typed error) when the ladder is armed;
   - the v3 health file skips unknown !directives (counted) while v2
     keeps its all-or-nothing strictness. *)

module Domain_pool = Xpest_util.Domain_pool
module Loader_pool = Xpest_util.Loader_pool
module Fault = Xpest_util.Fault
module E = Xpest_util.Xpest_error
module Pattern = Xpest_xpath.Pattern
module Summary = Xpest_synopsis.Summary
module Manifest = Xpest_synopsis.Manifest
module Synopsis_io = Xpest_synopsis.Synopsis_io
module Sketch = Xpest_synopsis.Sketch
module Sketch_exec = Xpest_estimator.Sketch_exec
module Xsketch = Xpest_baseline.Xsketch
module Registry = Xpest_datasets.Registry
module Catalog = Xpest_catalog.Catalog
module Admission = Xpest_catalog.Admission

let domain_counts = [ 1; 2; 4 ]
let load_domain_counts = [ 1; 2; 4 ]
let bits = Int64.bits_of_float

let check_bits label expected got =
  if not (Int64.equal (bits expected) (bits got)) then
    Alcotest.failf "%s: %h <> %h (bit drift)" label expected got

(* ------------------------------------------------------------------ *)
(* Fixtures: a catalog directory with sibling variances, plus          *)
(* in-memory fallback sketches of the same generated documents.        *)

let docs : (string, Xpest_xml.Doc.t) Hashtbl.t = Hashtbl.create 4

let doc_for dataset =
  match Hashtbl.find_opt docs dataset with
  | Some doc -> doc
  | None ->
      let name =
        match Registry.of_string dataset with
        | Some n -> n
        | None -> Alcotest.failf "unknown dataset %s" dataset
      in
      let doc = Registry.generate ~scale:0.02 name in
      Hashtbl.add docs dataset doc;
      doc

let summary_for (k : Catalog.key) =
  Summary.build ~p_variance:k.Catalog.variance ~o_variance:k.Catalog.variance
    (doc_for k.Catalog.dataset)

let sketch_for dataset = Sketch.build (doc_for dataset)
let key d v = { Catalog.dataset = d; variance = v }
let k_ss0 = key "ssplays" 0.0
let k_ss2 = key "ssplays" 2.0
let k_dblp = key "dblp" 0.0

let catalog_dir =
  lazy
    (let dir =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "xpest_degrade_%d" (Unix.getpid ()))
     in
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
     let m =
       List.fold_left
         (fun m k -> Catalog.save_entry ~dir m k (summary_for k))
         Manifest.empty
         [ k_ss0; k_ss2; k_dblp ]
     in
     let m =
       List.fold_left
         (fun m d -> Catalog.save_sketch ~dir m d (sketch_for d))
         m [ "ssplays"; "dblp" ]
     in
     Manifest.save m (Filename.concat dir Catalog.manifest_filename);
     dir)

let load_manifest dir =
  match Manifest.load_typed (Filename.concat dir Catalog.manifest_filename) with
  | Ok m -> m
  | Error e -> Alcotest.failf "manifest load failed: %s" (E.to_string e)

(* A sketch-free catalog over the shared directory (the sketch table
   is dropped from the manifest view, so nothing arms the ladder). *)
let make_plain ?admission ?io () =
  let dir = Lazy.force catalog_dir in
  let m = load_manifest dir in
  Catalog.of_manifest ?admission ?io ~resident_capacity:2 ~dir
    { m with Manifest.sketches = [] }

(* A sketch-armed catalog.  The sketches are installed from memory,
   not loaded through [io]: the ladder's premise is that the sketch
   tier went resident while storage was still healthy, before the
   faults the [io] argument injects began. *)
let make_armed ?admission ?io ?sketch_bytes () =
  let dir = Lazy.force catalog_dir in
  let m = load_manifest dir in
  let cat =
    Catalog.of_manifest ?admission ?io ?sketch_bytes ~resident_capacity:2 ~dir
      { m with Manifest.sketches = [] }
  in
  List.iter
    (fun d ->
      match Catalog.install_sketch cat d (sketch_for d) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "install_sketch %s: %s" d (E.to_string e))
    [ "ssplays"; "dblp" ];
  cat

let routed_pairs () =
  let p = Pattern.of_string in
  [|
    (k_ss0, p "//SPEECH/LINE");
    (k_dblp, p "//inproceedings/title");
    (k_ss2, p "//ACT[/{SCENE}]");
    (k_ss0, p "//PLAY//{SPEECH}");
    (k_ss2, p "//SPEECH/LINE");
    (k_dblp, p "//article/{author}");
    (k_ss0, p "//SPEECH/LINE");
    (k_dblp, p "//inproceedings/title");
    (k_ss2, p "//ACT[/{SCENE}]");
    (k_ss0, p "//SPEECH//{WORD}");
  |]

let status_to_string = function
  | Catalog.Served -> "served"
  | Catalog.Shed -> "shed"
  | Catalog.Fallback k -> "fallback:" ^ Catalog.key_to_string k
  | Catalog.Sketch -> "sketch"

let compare_statuses label a b =
  Alcotest.(check (array string))
    (label ^ ": same slot statuses")
    (Array.map status_to_string a)
    (Array.map status_to_string b)

let compare_results label reference results =
  Alcotest.(check int)
    (label ^ ": result count")
    (Array.length reference) (Array.length results);
  Array.iteri
    (fun i r ->
      match (reference.(i), r) with
      | Ok a, Ok b -> check_bits (Printf.sprintf "%s, query %d" label i) a b
      | Error a, Error b ->
          Alcotest.(check string)
            (Printf.sprintf "%s, query %d: same error" label i)
            (E.to_string a) (E.to_string b)
      | Ok _, Error e ->
          Alcotest.failf "%s, query %d: Ok became %s" label i (E.to_string e)
      | Error e, Ok _ ->
          Alcotest.failf "%s, query %d: %s became Ok" label i (E.to_string e))
    results

let check_same_stats label (a : Catalog.stats) (b : Catalog.stats) =
  let field name v_a v_b =
    Alcotest.(check int) (Printf.sprintf "%s: %s" label name) v_a v_b
  in
  field "resident" a.Catalog.resident b.Catalog.resident;
  field "loads" a.Catalog.loads b.Catalog.loads;
  field "hits" a.Catalog.hits b.Catalog.hits;
  field "evictions" a.Catalog.evictions b.Catalog.evictions;
  field "failures" a.Catalog.failures b.Catalog.failures;
  field "retries" a.Catalog.retries b.Catalog.retries;
  field "quarantines" a.Catalog.quarantines b.Catalog.quarantines;
  field "shed_queries" a.Catalog.shed_queries b.Catalog.shed_queries;
  field "fallback_queries" a.Catalog.fallback_queries b.Catalog.fallback_queries;
  field "sketch_queries" a.Catalog.sketch_queries b.Catalog.sketch_queries;
  field "sketch_resident" a.Catalog.sketch_resident b.Catalog.sketch_resident;
  field "sketch_failures" a.Catalog.sketch_failures b.Catalog.sketch_failures

(* ------------------------------------------------------------------ *)
(* Rung order: a resident sibling outranks the sketch.                 *)

let tight =
  {
    Admission.unlimited with
    Admission.deadline = Some 20;
    max_queued_loads = Some 2;
  }

let test_rung_order () =
  let p = Pattern.of_string in
  (* deadline 20: two loads (8 + 8) leave 4 ticks, so the third group
     is always shed.  When the shed key has a resident sibling variance
     the ladder stops at Fallback; only a sibling-less dataset falls
     through to its sketch. *)
  let cat = make_armed ~admission:tight () in
  let pairs =
    [| (k_ss0, p "//SPEECH/LINE"); (k_dblp, p "//article/{author}");
       (k_ss2, p "//SPEECH/LINE") |]
  in
  let results = Catalog.estimate_batch_r cat pairs in
  let statuses = Catalog.last_batch_statuses cat in
  Alcotest.(check string)
    "sibling rung outranks the sketch" "fallback:ssplays@0"
    (status_to_string statuses.(2));
  (match (results.(0), results.(2)) with
  | Ok direct, Ok degraded -> check_bits "sibling's estimate" direct degraded
  | _ -> Alcotest.fail "expected Ok results for slots 0 and 2");
  (* same shape, shed key now dblp: no sibling variance exists, so the
     ladder reaches the sketch rung and still answers *)
  let cat = make_armed ~admission:tight () in
  let pairs =
    [| (k_ss0, p "//SPEECH/LINE"); (k_ss2, p "//ACT[/{SCENE}]");
       (k_dblp, p "//article/{author}") |]
  in
  let results = Catalog.estimate_batch_r cat pairs in
  let statuses = Catalog.last_batch_statuses cat in
  Alcotest.(check string)
    "sibling-less dataset reaches the sketch rung" "sketch"
    (status_to_string statuses.(2));
  (match results.(2) with
  | Ok v -> Alcotest.(check bool) "sketch answer is finite" true
              (Float.is_finite v)
  | Error e -> Alcotest.failf "sketch rung errored: %s" (E.to_string e));
  let s = Catalog.stats cat in
  Alcotest.(check int) "one sketch query" 1 s.Catalog.sketch_queries;
  (* the sketch-free twin of the same batch fails the shed query typed
     — arming the ladder is exactly what turns that error into an
     answer *)
  let plain = make_plain ~admission:tight () in
  let plain_results = Catalog.estimate_batch_r plain pairs in
  (match plain_results.(2) with
  | Error (E.Deadline_exceeded _) -> ()
  | Error e -> Alcotest.failf "unexpected error kind: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "sketch-free twin served a shed sibling-less key")

(* The sketch answer is the order-1 Markov baseline's answer: the wire
   round-trip through the export must not perturb a single bit. *)
let test_sketch_matches_markov_baseline () =
  let doc = doc_for "dblp" in
  let xs = Xsketch.build ~budget_bytes:0 doc in
  let sx = Sketch_exec.create (Sketch.build doc) in
  List.iter
    (fun q ->
      let pat = Pattern.of_string q in
      check_bits q (Xsketch.estimate xs pat) (Sketch_exec.estimate sx pat))
    [
      "//article/{author}";
      "//inproceedings/title";
      "//dblp/article";
      "//article//{title}";
      "//absent_tag/title";
    ]

(* ------------------------------------------------------------------ *)
(* Total blackout: every load fails, the breaker opens, and the        *)
(* sketch tier still answers 100% of well-formed queries.              *)

let blackout_io () =
  Fault.io (Fault.create_keyed (Fault.uniform ~seed:11 ~rate:1.0))
    Fault.Io.default

let breaker_cfg =
  { Admission.unlimited with Admission.breaker_threshold = Some 2 }

let assert_all_sketch label cat results =
  Array.iteri
    (fun i r ->
      match r with
      | Ok v ->
          Alcotest.(check bool)
            (Printf.sprintf "%s, query %d: finite" label i)
            true (Float.is_finite v)
      | Error e ->
          Alcotest.failf "%s, query %d: blackout leaked an error: %s" label i
            (E.to_string e))
    results;
  Array.iteri
    (fun i s ->
      Alcotest.(check string)
        (Printf.sprintf "%s, slot %d status" label i)
        "sketch" (status_to_string s))
    (Catalog.last_batch_statuses cat)

let test_blackout_answers_from_sketch () =
  let pairs = routed_pairs () in
  let cat = make_armed ~admission:breaker_cfg ~io:(blackout_io ()) () in
  for round = 1 to 4 do
    let results = Catalog.estimate_batch_r cat pairs in
    assert_all_sketch (Printf.sprintf "round %d" round) cat results
  done;
  (* the breaker did open over the dead loader, and the sketch tier
     kept answering right through it *)
  Alcotest.(check bool)
    "breaker open" true
    ((Catalog.breaker cat).Admission.state <> `Closed);
  let s = Catalog.stats cat in
  Alcotest.(check int)
    "every query answered by the sketch tier"
    (4 * Array.length pairs)
    s.Catalog.sketch_queries;
  Alcotest.(check bool) "loads did fail" true (s.Catalog.failures > 0);
  (* without a breaker the dead loader is probed until every key is
     quarantined — the Quarantined rung of the ladder — and the sketch
     tier still answers everything *)
  let cat = make_armed ~io:(blackout_io ()) () in
  for round = 1 to 4 do
    let results = Catalog.estimate_batch_r cat pairs in
    assert_all_sketch (Printf.sprintf "no-breaker round %d" round) cat results
  done;
  Alcotest.(check bool)
    "keys were quarantined" true
    ((Catalog.stats cat).Catalog.quarantines > 0)

let test_blackout_bit_identity () =
  let pairs = routed_pairs () in
  (* sequential reference *)
  let seq_cat = make_armed ~admission:breaker_cfg ~io:(blackout_io ()) () in
  let reference =
    Array.init 3 (fun _ -> Catalog.estimate_batch_r seq_cat pairs)
  in
  let ref_statuses = Catalog.last_batch_statuses seq_cat in
  let ref_stats = Catalog.stats seq_cat in
  let ref_clock = Catalog.clock seq_cat in
  let check_twin label batch cat =
    Array.iteri
      (fun round results ->
        compare_results
          (Printf.sprintf "%s, round %d" label (round + 1))
          reference.(round) results)
      batch;
    compare_statuses label ref_statuses (Catalog.last_batch_statuses cat);
    check_same_stats label ref_stats (Catalog.stats cat);
    Alcotest.(check int) (label ^ ": same clock") ref_clock (Catalog.clock cat)
  in
  List.iter
    (fun domains ->
      let cat = make_armed ~admission:breaker_cfg ~io:(blackout_io ()) () in
      Domain_pool.with_pool ~domains (fun pool ->
          check_twin
            (Printf.sprintf "%d domains" domains)
            (Array.init 3 (fun _ -> Catalog.estimate_batch_r ~pool cat pairs))
            cat))
    domain_counts;
  List.iter
    (fun load_domains ->
      let cat = make_armed ~admission:breaker_cfg ~io:(blackout_io ()) () in
      Domain_pool.with_pool ~domains:load_domains (fun lp ->
          let loads = Loader_pool.over lp in
          check_twin
            (Printf.sprintf "%d load domains" load_domains)
            (Array.init 3 (fun _ -> Catalog.estimate_batch_r ~loads cat pairs))
            cat))
    load_domain_counts

(* ------------------------------------------------------------------ *)
(* Healthy storage: arming the ladder changes nothing.                 *)

let test_healthy_armed_is_identity () =
  let pairs = routed_pairs () in
  List.iter
    (fun admission ->
      let plain = make_plain ?admission () in
      let armed = make_armed ?admission () in
      for round = 1 to 4 do
        let label = Printf.sprintf "round %d" round in
        let reference = Catalog.estimate_batch_r plain pairs in
        let results = Catalog.estimate_batch_r armed pairs in
        compare_results label reference results;
        Alcotest.(check int)
          (label ^ ": same clock")
          (Catalog.clock plain) (Catalog.clock armed);
        Array.iter
          (function
            | Catalog.Served -> ()
            | s ->
                Alcotest.failf "%s: healthy armed catalog produced a %s slot"
                  label (status_to_string s))
          (Catalog.last_batch_statuses armed)
      done;
      Alcotest.(check int)
        "no sketch queries over healthy storage" 0
        (Catalog.stats armed).Catalog.sketch_queries)
    [
      None;
      Some
        {
          Admission.unlimited with
          Admission.deadline = Some max_int;
          max_queued_loads = Some max_int;
        };
    ]

(* ------------------------------------------------------------------ *)
(* The pinned region's byte budget is a hard bound.                    *)

let test_sketch_budget_is_hard () =
  let sk_ss = sketch_for "ssplays" in
  let sk_db = sketch_for "dblp" in
  (* a budget one byte short of the sketch refuses it, typed *)
  let cat = make_plain () in
  ignore cat;
  let short =
    Catalog.of_manifest
      ~sketch_bytes:(Sketch.size_bytes sk_ss - 1)
      ~resident_capacity:2
      ~dir:(Lazy.force catalog_dir)
      { (load_manifest (Lazy.force catalog_dir)) with Manifest.sketches = [] }
  in
  (match Catalog.install_sketch short "ssplays" sk_ss with
  | Error (E.Capacity _) -> ()
  | Error e -> Alcotest.failf "wrong refusal: %s" (E.to_string e)
  | Ok () -> Alcotest.fail "over-budget sketch was installed");
  let s = Catalog.stats short in
  Alcotest.(check int) "refusal counted" 1 s.Catalog.sketch_failures;
  Alcotest.(check int) "nothing resident" 0 s.Catalog.sketch_resident;
  Alcotest.(check int) "no bytes used" 0 s.Catalog.sketch_bytes;
  (* an exact-fit budget takes the first sketch and refuses the second;
     residency never exceeds the budget at any point *)
  let exact =
    Catalog.of_manifest
      ~sketch_bytes:(Sketch.size_bytes sk_ss)
      ~resident_capacity:2
      ~dir:(Lazy.force catalog_dir)
      { (load_manifest (Lazy.force catalog_dir)) with Manifest.sketches = [] }
  in
  (match Catalog.install_sketch exact "ssplays" sk_ss with
  | Ok () -> ()
  | Error e -> Alcotest.failf "exact fit refused: %s" (E.to_string e));
  (match Catalog.install_sketch exact "dblp" sk_db with
  | Error (E.Capacity _) -> ()
  | Error e -> Alcotest.failf "wrong refusal: %s" (E.to_string e)
  | Ok () -> Alcotest.fail "second sketch broke the budget");
  let s = Catalog.stats exact in
  Alcotest.(check int) "one resident" 1 s.Catalog.sketch_resident;
  Alcotest.(check bool)
    "region within budget" true
    (s.Catalog.sketch_bytes <= s.Catalog.sketch_budget);
  (* replacing a dataset's sketch must not double-count its bytes *)
  (match Catalog.install_sketch exact "ssplays" sk_ss with
  | Ok () -> ()
  | Error e -> Alcotest.failf "replacement refused: %s" (E.to_string e));
  let s = Catalog.stats exact in
  Alcotest.(check int) "still one resident" 1 s.Catalog.sketch_resident;
  Alcotest.(check bool)
    "still within budget" true
    (s.Catalog.sketch_bytes <= s.Catalog.sketch_budget)

(* The armed blackout workload never grows the region either: serving
   from the sketch tier is read-only residency. *)
let test_blackout_region_stays_within_budget () =
  let cat = make_armed ~admission:breaker_cfg ~io:(blackout_io ()) () in
  let pairs = routed_pairs () in
  for _ = 1 to 3 do
    ignore (Catalog.estimate_batch_r cat pairs);
    let s = Catalog.stats cat in
    Alcotest.(check bool)
      "sketch region within budget" true
      (s.Catalog.sketch_bytes <= s.Catalog.sketch_budget);
    Alcotest.(check int) "both sketches resident" 2 s.Catalog.sketch_resident
  done

(* ------------------------------------------------------------------ *)
(* Chaos: with the ladder armed and the Degrade policy, every injected *)
(* fault path lands on a rung — no typed error ever escapes.           *)

let chaos_cfg =
  {
    Admission.unlimited with
    Admission.deadline = Some 40;
    max_queued_loads = Some 2;
    breaker_threshold = Some 2;
  }

let test_chaos_every_fault_lands_on_a_rung () =
  let pairs = routed_pairs () in
  let chaos_io () =
    Fault.io (Fault.create_keyed (Fault.uniform ~seed:23 ~rate:0.4))
      Fault.Io.default
  in
  (* sequential reference, plus the no-error invariant *)
  let seq_cat = make_armed ~admission:chaos_cfg ~io:(chaos_io ()) () in
  let reference =
    Array.init 4 (fun round ->
        let results = Catalog.estimate_batch_r seq_cat pairs in
        Array.iteri
          (fun i r ->
            match r with
            | Ok _ -> ()
            | Error e ->
                Alcotest.failf "round %d, query %d: fault escaped the ladder: %s"
                  (round + 1) i (E.to_string e))
          results;
        results)
  in
  let ref_statuses = Catalog.last_batch_statuses seq_cat in
  let ref_stats = Catalog.stats seq_cat in
  (* the workload did exercise the lower rungs *)
  Alcotest.(check bool)
    "lower rungs used" true
    (ref_stats.Catalog.fallback_queries > 0
    || ref_stats.Catalog.sketch_queries > 0);
  (* and reproduces bit-for-bit under the loader pool *)
  List.iter
    (fun load_domains ->
      let cat = make_armed ~admission:chaos_cfg ~io:(chaos_io ()) () in
      Domain_pool.with_pool ~domains:load_domains (fun lp ->
          let loads = Loader_pool.over lp in
          Array.iteri
            (fun round expected ->
              compare_results
                (Printf.sprintf "%d load domains, round %d" load_domains
                   (round + 1))
                expected
                (Catalog.estimate_batch_r ~loads cat pairs))
            reference;
          compare_statuses
            (Printf.sprintf "%d load domains" load_domains)
            ref_statuses
            (Catalog.last_batch_statuses cat);
          check_same_stats
            (Printf.sprintf "%d load domains" load_domains)
            ref_stats (Catalog.stats cat)))
    load_domain_counts

(* ------------------------------------------------------------------ *)
(* of_manifest arms the ladder from the sketch table.                  *)

let test_of_manifest_installs_sketches () =
  let dir = Lazy.force catalog_dir in
  let cat = Catalog.of_manifest ~resident_capacity:2 ~dir (load_manifest dir) in
  let s = Catalog.stats cat in
  Alcotest.(check int) "both sketches installed" 2 s.Catalog.sketch_resident;
  Alcotest.(check int) "no install failures" 0 s.Catalog.sketch_failures;
  (* storage dies after startup: delete every summary file; the
     eagerly-loaded sketch tier still answers everything *)
  let dir2 =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xpest_degrade_dead_%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir2) then Unix.mkdir dir2 0o755;
  let m =
    List.fold_left
      (fun m k -> Catalog.save_entry ~dir:dir2 m k (summary_for k))
      Manifest.empty [ k_ss0; k_dblp ]
  in
  let m = Catalog.save_sketch ~dir:dir2 m "ssplays" (sketch_for "ssplays") in
  let m = Catalog.save_sketch ~dir:dir2 m "dblp" (sketch_for "dblp") in
  let cat = Catalog.of_manifest ~resident_capacity:2 ~dir:dir2 m in
  List.iter
    (fun k -> Sys.remove (Filename.concat dir2 (Catalog.key_filename k)))
    [ k_ss0; k_dblp ];
  let p = Pattern.of_string in
  let pairs = [| (k_ss0, p "//SPEECH/LINE"); (k_dblp, p "//article/{author}") |] in
  let results = Catalog.estimate_batch_r cat pairs in
  assert_all_sketch "post-startup storage death" cat results

(* ------------------------------------------------------------------ *)
(* Sketch wire format and the manifest's sketch table.                 *)

let test_sketch_roundtrip_and_kind () =
  let dir = Lazy.force catalog_dir in
  let path = Filename.concat dir (Catalog.sketch_filename "dblp") in
  (* the file written by save_sketch is a recognized container kind *)
  (match Synopsis_io.kind (Synopsis_io.info path) with
  | `Sketch -> ()
  | `Synopsis | `Catalog_manifest | `Unknown ->
      Alcotest.fail "sketch file not recognized as a sketch");
  (* the decoded sketch estimates bit-identically to the built one *)
  let loaded =
    match Sketch.load_typed path with
    | Ok s -> s
    | Error e -> Alcotest.failf "sketch load failed: %s" (E.to_string e)
  in
  let built = Sketch_exec.create (sketch_for "dblp") in
  let reloaded = Sketch_exec.create loaded in
  List.iter
    (fun q ->
      let pat = Pattern.of_string q in
      check_bits q (Sketch_exec.estimate built pat)
        (Sketch_exec.estimate reloaded pat))
    [ "//article/{author}"; "//dblp/article"; "//inproceedings/title" ];
  (* the manifest's sketch table survives its own round-trip *)
  let m = load_manifest dir in
  (match Manifest.find_sketch m ~dataset:"dblp" with
  | None -> Alcotest.fail "sketch entry lost from the manifest"
  | Some e ->
      Alcotest.(check string)
        "sketch file name" (Catalog.sketch_filename "dblp")
        e.Manifest.s_file;
      Alcotest.(check bool) "recorded size" true (e.Manifest.s_bytes > 0);
      match Catalog.sketch_check ~dir e with
      | Ok _ -> ()
      | Error err -> Alcotest.failf "sketch_check failed: %s" (E.to_string err));
  (* corruption is a typed refusal, not a crash or a wrong answer *)
  let corrupt_path = Filename.concat dir "corrupt.sketch" in
  let body = In_channel.with_open_bin path In_channel.input_all in
  let flipped = Bytes.of_string body in
  let off = Bytes.length flipped - 3 in
  Bytes.set flipped off (Char.chr (Char.code (Bytes.get flipped off) lxor 0xff));
  Out_channel.with_open_bin corrupt_path (fun oc ->
      Out_channel.output_bytes oc flipped);
  match Sketch.load_typed corrupt_path with
  | Error (E.Corrupt _) -> ()
  | Error e -> Alcotest.failf "wrong error kind: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "corrupted sketch decoded"

(* ------------------------------------------------------------------ *)
(* Health file v3: unknown directives skip, v2 stays strict.           *)

let health_path name =
  Filename.concat (Lazy.force catalog_dir) (name ^ ".health")

let test_health_v3_skips_unknown_directives () =
  let path = health_path "v3_unknown" in
  let oc = open_out path in
  output_string oc "xpest-catalog-health/3\n";
  output_string oc "!breaker\topen\t5\t2\t16\n";
  (* an invented directive from some future writer *)
  output_string oc "!sketch-epoch\t7\tfe3a\n";
  output_string oc "!totally-unknown\n";
  close_out oc;
  let cat = make_plain ~admission:breaker_cfg () in
  (match Catalog.load_health cat path with
  | Ok n -> Alcotest.(check int) "no rows in the file" 0 n
  | Error e -> Alcotest.failf "v3 load failed on unknown directive: %s"
                 (E.to_string e));
  (* the known directive still applied, the unknown ones were counted *)
  Alcotest.(check bool)
    "breaker restored from the known directive" true
    ((Catalog.breaker cat).Admission.state = `Open);
  Alcotest.(check int)
    "skipped directives counted" 2
    (Catalog.stats cat).Catalog.skipped_directives

let test_health_v2_unknown_directive_still_corrupt () =
  let path = health_path "v2_unknown" in
  let oc = open_out path in
  output_string oc "xpest-catalog-health/2\n!sketch-epoch\t7\tfe3a\n";
  close_out oc;
  let cat = make_plain ~admission:breaker_cfg () in
  match Catalog.load_health cat path with
  | Ok _ -> Alcotest.fail "v2 accepted an unknown directive"
  | Error e ->
      Alcotest.(check string) "typed corrupt error" "corrupt" (E.kind e);
      Alcotest.(check int)
        "nothing skipped on a failed load" 0
        (Catalog.stats cat).Catalog.skipped_directives

let () =
  Alcotest.run "catalog_degrade"
    [
      ( "ladder",
        [
          Alcotest.test_case "sibling rung outranks the sketch" `Quick
            test_rung_order;
          Alcotest.test_case "sketch matches the Markov baseline" `Quick
            test_sketch_matches_markov_baseline;
        ] );
      ( "blackout",
        [
          Alcotest.test_case "100% quarantined still answers" `Quick
            test_blackout_answers_from_sketch;
          Alcotest.test_case "bit-identical at any fan-out" `Quick
            test_blackout_bit_identity;
        ] );
      ( "identity",
        [
          Alcotest.test_case "healthy armed catalog is inert" `Quick
            test_healthy_armed_is_identity;
        ] );
      ( "budget",
        [
          Alcotest.test_case "pinned region budget is hard" `Quick
            test_sketch_budget_is_hard;
          Alcotest.test_case "blackout serving stays within budget" `Quick
            test_blackout_region_stays_within_budget;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "every fault lands on a rung" `Quick
            test_chaos_every_fault_lands_on_a_rung;
        ] );
      ( "provisioning",
        [
          Alcotest.test_case "of_manifest installs the sketch table" `Quick
            test_of_manifest_installs_sketches;
          Alcotest.test_case "sketch wire round-trip and kind" `Quick
            test_sketch_roundtrip_and_kind;
        ] );
      ( "health",
        [
          Alcotest.test_case "v3 skips unknown directives" `Quick
            test_health_v3_skips_unknown_directives;
          Alcotest.test_case "v2 unknown directive stays corrupt" `Quick
            test_health_v2_unknown_directive_still_corrupt;
        ] );
    ]
