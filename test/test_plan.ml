(* Plan-compiler unit tests.

   The compiler's equation choice is the estimator's dispatch, so the
   tags are pinned here for the paper's example query forms: a wrong
   tag means a different estimation formula would fire.  Plan_cache is
   the bounded LRU under every estimator cache; its recency and
   eviction behaviour is pinned directly. *)

module Pattern = Xpest_xpath.Pattern
module Plan = Xpest_plan.Plan
module Plan_cache = Xpest_plan.Plan_cache

let check_eq query expected =
  let plan = Plan.compile (Pattern.of_string query) in
  Alcotest.(check string)
    query expected
    (Plan.equation_name (Plan.equation plan))

(* ------------------------------------------------------------------ *)
(* Equation tags for the paper's query forms.                          *)

let test_simple () =
  check_eq "//A//{C}" "theorem_4_1";
  check_eq "/{A}" "theorem_4_1";
  check_eq "//A/B/{D}" "theorem_4_1"

let test_branch () =
  (* tail target: Equation 2 through Q' = trunk/tail *)
  check_eq "//A[/C/F]/B/{D}" "equation_2";
  (* branch target: Equation 2 through Q' = trunk/branch *)
  check_eq "//A[/C/{F}]/B/D" "equation_2";
  (* trunk target: the joined frequency is the answer *)
  check_eq "//{A}[/C/F]/B/D" "theorem_4_1"

let test_order_sibling () =
  (* head of the second branch: Equation 3 *)
  check_eq "//A[/C/folls::{B}/D]" "equation_3";
  (* head of the first branch: Equation 3 *)
  check_eq "//A[/{C}/folls::B/D]" "equation_3";
  (* deeper in the second branch: Equation 4 *)
  check_eq "//A[/C/folls::B/{D}]" "equation_4";
  check_eq "//A[/C/F/pres::B/{D}]" "equation_4";
  (* trunk target of an order query: Equation 5 *)
  check_eq "//{A}[/C/folls::B/D]" "equation_5";
  check_eq "//{A}[/C/pres::B]" "equation_5"

let test_conversion () =
  (* [following]/[preceding] convert to sibling-axis queries at
     execution time, whatever the target position *)
  check_eq "//A[/C/foll::{B}]" "conversion_5_3";
  check_eq "//A[/C/foll::B/{D}]" "conversion_5_3";
  check_eq "//{A}[/C/prec::B]" "conversion_5_3";
  check_eq "//A[/{C}/prec::B]" "conversion_5_3"

let test_compile_position () =
  let q = Pattern.of_string "//A[/C/F]/B/{D}" in
  let retargeted = Plan.compile_position q (Pattern.In_trunk 0) in
  Alcotest.(check string)
    "retargeted to trunk" "theorem_4_1"
    (Plan.equation_name (Plan.equation retargeted));
  Alcotest.check_raises "invalid position"
    (Invalid_argument "Pattern.v: target position outside the pattern")
    (fun () -> ignore (Plan.compile_position q (Pattern.In_trunk 9)))

(* ------------------------------------------------------------------ *)
(* Join-spec structure.                                                *)

let test_join_spec () =
  let plan = Plan.compile (Pattern.of_string "//A[/C/F]/B/{D}") in
  let spec = plan.Plan.join in
  Alcotest.(check int) "nodes" 5 (Array.length spec.Plan.nodes);
  Alcotest.(check int) "edges" 4 (List.length spec.Plan.edges);
  Alcotest.(check int) "chains" 2 (List.length spec.Plan.chains);
  Alcotest.(check bool)
    "descendant head => unanchored chains" true
    (List.for_all (fun (c : Plan.chain) -> not c.Plan.anchored) spec.Plan.chains);
  (* an anchored head anchors every chain *)
  let anchored = Plan.compile (Pattern.of_string "/A[/C]/{B}") in
  Alcotest.(check bool)
    "child head => anchored chains" true
    (List.for_all
       (fun (c : Plan.chain) -> c.Plan.anchored)
       anchored.Plan.join.Plan.chains)

let test_eq2_precompiled () =
  let plan = Plan.compile (Pattern.of_string "//A[/C/F]/B/{D}") in
  match plan.Plan.eq2 with
  | None -> Alcotest.fail "equation-2 plan lacks its eq2 record"
  | Some e ->
      (* Q' drops the branch: trunk (1) + tail (2) nodes *)
      Alcotest.(check int) "q' nodes" 3 (Array.length e.Plan.q_prime.Plan.nodes);
      Alcotest.(check bool)
        "ni = last trunk node" true
        (e.Plan.ni = Pattern.In_trunk 0);
      Alcotest.(check bool)
        "target spliced after the trunk" true
        (e.Plan.pos_in_q' = Pattern.In_trunk 2)

let test_pp_smoke () =
  let dump q = Plan.to_string (Plan.compile (Pattern.of_string q)) in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let d = dump "//A[/C/F]/B/{D}" in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("pp mentions " ^ needle) true (contains d needle))
    [ "equation_2"; "tail[1]"; "chain 0"; "Q' = //A/B/D"; "//A[/C/F]/B/{D}" ];
  let d = dump "//A[/C/folls::{B}/D]" in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("pp mentions " ^ needle) true (contains d needle))
    [ "equation_3"; "second[0]" ]

(* ------------------------------------------------------------------ *)
(* Plan_cache: bounded LRU.                                            *)

let test_cache_basics () =
  let c = Plan_cache.create ~capacity:2 () in
  Plan_cache.add c "a" 1;
  Plan_cache.add c "b" 2;
  Alcotest.(check (option int)) "a cached" (Some 1) (Plan_cache.find_opt c "a");
  (* "a" was just used, so inserting "c" evicts "b" *)
  Plan_cache.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Plan_cache.find_opt c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Plan_cache.find_opt c "a");
  Alcotest.(check (option int)) "c cached" (Some 3) (Plan_cache.find_opt c "c");
  Alcotest.(check int) "length" 2 (Plan_cache.length c);
  Alcotest.(check int) "capacity" 2 (Plan_cache.capacity c);
  Alcotest.(check int) "evictions" 1 (Plan_cache.evictions c)

let test_cache_lru_order () =
  let c = Plan_cache.create ~capacity:3 () in
  List.iter (fun k -> Plan_cache.add c k k) [ 1; 2; 3 ];
  Alcotest.(check (list int))
    "most-recent first" [ 3; 2; 1 ]
    (Plan_cache.keys_by_recency c);
  ignore (Plan_cache.find_opt c 1);
  Alcotest.(check (list int))
    "find promotes" [ 1; 3; 2 ]
    (Plan_cache.keys_by_recency c);
  Plan_cache.add c 4 4;
  Alcotest.(check (option int)) "lru (2) evicted" None (Plan_cache.find_opt c 2);
  Alcotest.(check (option int)) "1 kept" (Some 1) (Plan_cache.find_opt c 1)

let test_cache_find_or_add () =
  let c = Plan_cache.create ~capacity:8 () in
  let computed = ref 0 in
  let compute k =
    incr computed;
    k * 10
  in
  Alcotest.(check int) "computed" 10 (Plan_cache.find_or_add c 1 compute);
  Alcotest.(check int) "cached" 10 (Plan_cache.find_or_add c 1 compute);
  Alcotest.(check int) "compute ran once" 1 !computed;
  Plan_cache.clear c;
  Alcotest.(check int) "cleared" 0 (Plan_cache.length c);
  Alcotest.(check int) "recomputed" 10 (Plan_cache.find_or_add c 1 compute);
  Alcotest.(check int) "compute ran again" 2 !computed

let test_cache_overwrite_and_bounds () =
  let c = Plan_cache.create ~capacity:2 () in
  Plan_cache.add c "k" 1;
  Plan_cache.add c "k" 2;
  Alcotest.(check (option int)) "overwrite" (Some 2) (Plan_cache.find_opt c "k");
  Alcotest.(check int) "no duplicate entry" 1 (Plan_cache.length c);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Plan_cache.create: capacity must be >= 1") (fun () ->
      ignore (Plan_cache.create ~capacity:0 ()));
  (* hammer a capacity-1 cache: never grows past its bound *)
  let tiny = Plan_cache.create ~capacity:1 () in
  for i = 1 to 100 do
    Plan_cache.add tiny i i
  done;
  Alcotest.(check int) "bounded" 1 (Plan_cache.length tiny);
  Alcotest.(check int) "evictions counted" 99 (Plan_cache.evictions tiny);
  Alcotest.(check (option int)) "newest kept" (Some 100)
    (Plan_cache.find_opt tiny 100)

let () =
  Alcotest.run "plan"
    [
      ( "equations",
        [
          Alcotest.test_case "simple" `Quick test_simple;
          Alcotest.test_case "branch" `Quick test_branch;
          Alcotest.test_case "order (sibling)" `Quick test_order_sibling;
          Alcotest.test_case "order (conversion)" `Quick test_conversion;
          Alcotest.test_case "compile_position" `Quick test_compile_position;
        ] );
      ( "ir",
        [
          Alcotest.test_case "join spec" `Quick test_join_spec;
          Alcotest.test_case "eq2 precompiled" `Quick test_eq2_precompiled;
          Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
        ] );
      ( "cache",
        [
          Alcotest.test_case "basics" `Quick test_cache_basics;
          Alcotest.test_case "lru order" `Quick test_cache_lru_order;
          Alcotest.test_case "find_or_add" `Quick test_cache_find_or_add;
          Alcotest.test_case "overwrite and bounds" `Quick
            test_cache_overwrite_and_bounds;
        ] );
    ]
