(* The observability counters: disabled by default, zero-cost no-ops
   when off, accurate when on, and visible through the harness
   renderer. *)

module Counters = Xpest_util.Counters
module Metrics = Xpest_harness.Metrics
module Summary = Xpest_synopsis.Summary
module Estimator = Xpest_estimator.Estimator
module Pattern = Xpest_xpath.Pattern

let c_test = Counters.create "test.counter"
let t_test = Counters.create_timer "test.timer"

let test_disabled_is_noop () =
  Counters.set_enabled false;
  Counters.reset ();
  Counters.incr c_test;
  Counters.add c_test 10;
  Counters.record t_test 1.0;
  Alcotest.(check int) "counter untouched" 0 (Counters.value c_test);
  Alcotest.(check int) "timer untouched" 0 (Counters.timer_calls t_test);
  Alcotest.(check bool) "no snapshot rows" true (Counters.counters () = [])

let test_enabled_counts () =
  Counters.with_enabled (fun () ->
      Counters.incr c_test;
      Counters.add c_test 4;
      Counters.record t_test 0.25;
      Counters.record t_test 0.5;
      Alcotest.(check int) "count" 5 (Counters.value c_test);
      Alcotest.(check int) "calls" 2 (Counters.timer_calls t_test);
      Alcotest.(check (float 1e-9)) "seconds" 0.75 (Counters.timer_seconds t_test);
      Alcotest.(check bool) "snapshot contains the counter" true
        (List.mem_assoc "test.counter" (Counters.counters ())));
  Alcotest.(check bool) "disabled again" false (Counters.enabled ())

let test_estimator_sites_fire () =
  let summary = Summary.build Paper_fixture.doc in
  Metrics.with_counters (fun () ->
      let est = Estimator.create summary in
      ignore (Estimator.estimate est (Pattern.of_string "//B/{D}"));
      ignore (Estimator.estimate est (Pattern.of_string "//A[/C/F]/B/{D}")));
  let names = List.map fst (Counters.counters ()) in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " recorded") true
        (List.mem expected names))
    [
      "estimator.estimate";
      "estimator.eq.theorem_4_1";
      "estimator.eq.equation_2";
      "path_join.run_cache.miss";
      "path_join.rel_cache.miss";
    ];
  Alcotest.(check bool) "rendered" true
    (String.length (Metrics.render_counters ()) > 0);
  (* rows are [name; value] pairs *)
  List.iter
    (fun row -> Alcotest.(check int) "two columns" 2 (List.length row))
    (Metrics.counter_rows ())

(* --- concurrency: counters are atomic and timers mutex-guarded, so
   totals recorded from several domains at once must be exact, not
   merely approximate *)

let test_concurrent_incr_exact () =
  let workers = 4 and per_worker = 25_000 in
  Counters.with_enabled (fun () ->
      Counters.reset ();
      let ds =
        Array.init workers (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to per_worker do
                  Counters.incr c_test
                done))
      in
      Array.iter Domain.join ds;
      Alcotest.(check int) "no lost increments" (workers * per_worker)
        (Counters.value c_test))

let test_concurrent_add_exact () =
  let workers = 4 and per_worker = 5_000 in
  Counters.with_enabled (fun () ->
      Counters.reset ();
      let ds =
        Array.init workers (fun w ->
            Domain.spawn (fun () ->
                for _ = 1 to per_worker do
                  Counters.add c_test (w + 1)
                done))
      in
      Array.iter Domain.join ds;
      (* sum over workers of per_worker * (w+1) = per_worker * 10 *)
      Alcotest.(check int) "no torn adds" (per_worker * 10)
        (Counters.value c_test))

let test_concurrent_timer_exact () =
  let workers = 4 and per_worker = 2_000 in
  Counters.with_enabled (fun () ->
      Counters.reset ();
      let ds =
        Array.init workers (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to per_worker do
                  Counters.record t_test 0.001
                done))
      in
      Array.iter Domain.join ds;
      Alcotest.(check int) "every call recorded" (workers * per_worker)
        (Counters.timer_calls t_test);
      (* float accumulation under the mutex: same sum as sequential,
         up to commutativity (identical addends, so exact here) *)
      Alcotest.(check (float 1e-6)) "seconds accumulated"
        (float_of_int (workers * per_worker) *. 0.001)
        (Counters.timer_seconds t_test))

let test_concurrent_snapshot_consistent () =
  (* snapshots taken mid-hammering never see values outside the range
     actually written so far, and the final delta is exact *)
  Counters.with_enabled (fun () ->
      Counters.reset ();
      let before = Counters.snapshot () in
      let total = 40_000 in
      let d =
        Domain.spawn (fun () ->
            for _ = 1 to total do
              Counters.incr c_test
            done)
      in
      let monotone = ref true in
      let last = ref 0 in
      for _ = 1 to 100 do
        let v = Counters.value c_test in
        if v < !last || v > total then monotone := false;
        last := v
      done;
      Domain.join d;
      Alcotest.(check bool) "mid-flight reads monotone and in range" true
        !monotone;
      let delta = Counters.delta_between before (Counters.snapshot ()) in
      Alcotest.(check int) "final delta exact" total
        (match List.assoc_opt "test.counter" delta with
        | Some v -> v
        | None -> 0))

let test_estimates_unchanged_by_counting () =
  let summary = Summary.build Paper_fixture.doc in
  let q = Pattern.of_string "//A[/C/folls::{B}/D]" in
  let plain = Estimator.estimate (Estimator.create summary) q in
  let counted =
    Metrics.with_counters (fun () ->
        Estimator.estimate (Estimator.create summary) q)
  in
  Alcotest.(check (float 0.0)) "identical" plain counted

let () =
  Alcotest.run "counters"
    [
      ( "core",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "enabled counts" `Quick test_enabled_counts;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "incr exact across domains" `Quick
            test_concurrent_incr_exact;
          Alcotest.test_case "add exact across domains" `Quick
            test_concurrent_add_exact;
          Alcotest.test_case "timer exact across domains" `Quick
            test_concurrent_timer_exact;
          Alcotest.test_case "snapshot consistent mid-flight" `Quick
            test_concurrent_snapshot_consistent;
        ] );
      ( "integration",
        [
          Alcotest.test_case "estimator sites fire" `Quick
            test_estimator_sites_fire;
          Alcotest.test_case "estimates unchanged by counting" `Quick
            test_estimates_unchanged_by_counting;
        ] );
    ]
