(* The observability counters: disabled by default, zero-cost no-ops
   when off, accurate when on, and visible through the harness
   renderer. *)

module Counters = Xpest_util.Counters
module Metrics = Xpest_harness.Metrics
module Summary = Xpest_synopsis.Summary
module Estimator = Xpest_estimator.Estimator
module Pattern = Xpest_xpath.Pattern

let c_test = Counters.create "test.counter"
let t_test = Counters.create_timer "test.timer"

let test_disabled_is_noop () =
  Counters.set_enabled false;
  Counters.reset ();
  Counters.incr c_test;
  Counters.add c_test 10;
  Counters.record t_test 1.0;
  Alcotest.(check int) "counter untouched" 0 (Counters.value c_test);
  Alcotest.(check int) "timer untouched" 0 (Counters.timer_calls t_test);
  Alcotest.(check bool) "no snapshot rows" true (Counters.counters () = [])

let test_enabled_counts () =
  Counters.with_enabled (fun () ->
      Counters.incr c_test;
      Counters.add c_test 4;
      Counters.record t_test 0.25;
      Counters.record t_test 0.5;
      Alcotest.(check int) "count" 5 (Counters.value c_test);
      Alcotest.(check int) "calls" 2 (Counters.timer_calls t_test);
      Alcotest.(check (float 1e-9)) "seconds" 0.75 (Counters.timer_seconds t_test);
      Alcotest.(check bool) "snapshot contains the counter" true
        (List.mem_assoc "test.counter" (Counters.counters ())));
  Alcotest.(check bool) "disabled again" false (Counters.enabled ())

let test_estimator_sites_fire () =
  let summary = Summary.build Paper_fixture.doc in
  Metrics.with_counters (fun () ->
      let est = Estimator.create summary in
      ignore (Estimator.estimate est (Pattern.of_string "//B/{D}"));
      ignore (Estimator.estimate est (Pattern.of_string "//A[/C/F]/B/{D}")));
  let names = List.map fst (Counters.counters ()) in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " recorded") true
        (List.mem expected names))
    [
      "estimator.estimate";
      "estimator.eq.theorem_4_1";
      "estimator.eq.equation_2";
      "path_join.run_cache.miss";
      "path_join.rel_cache.miss";
    ];
  Alcotest.(check bool) "rendered" true
    (String.length (Metrics.render_counters ()) > 0);
  (* rows are [name; value] pairs *)
  List.iter
    (fun row -> Alcotest.(check int) "two columns" 2 (List.length row))
    (Metrics.counter_rows ())

let test_estimates_unchanged_by_counting () =
  let summary = Summary.build Paper_fixture.doc in
  let q = Pattern.of_string "//A[/C/folls::{B}/D]" in
  let plain = Estimator.estimate (Estimator.create summary) q in
  let counted =
    Metrics.with_counters (fun () ->
        Estimator.estimate (Estimator.create summary) q)
  in
  Alcotest.(check (float 0.0)) "identical" plain counted

let () =
  Alcotest.run "counters"
    [
      ( "core",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "enabled counts" `Quick test_enabled_counts;
        ] );
      ( "integration",
        [
          Alcotest.test_case "estimator sites fire" `Quick
            test_estimator_sites_fire;
          Alcotest.test_case "estimates unchanged by counting" `Quick
            test_estimates_unchanged_by_counting;
        ] );
    ]
