(* Properties and differentials for the unified cache core
   (Xpest_util.Bounded_cache):

   - model differential: the Lru policy against a naive reference LRU
     (association list), op-for-op — recency order, lookup results,
     lengths;
   - cost conservation: [stats.s_cost] always equals the fold-summed
     per-entry cost, never exceeds capacity without pins, and
     [s_length = s_probationary + s_protected];
   - pin-never-evicted: a resident pinned key survives any amount of
     insert pressure until unpinned or explicitly removed;
   - segment invariant: the protected segment never outgrows
     [protected_ratio] of capacity (unit cost);
   - scan resistance: on a hot-keys-plus-cold-scan workload at the
     same budget, Segmented strictly out-hits plain Lru — the
     deterministic core of the S1-thrash bench section;
   - engine differential: estimates are bit-identical with
     [Cache_config.segmented] on and off (cache policy affects
     residency, never values). *)

module Bounded_cache = Xpest_util.Bounded_cache
module Cache_config = Xpest_plan.Cache_config
module Pattern = Xpest_xpath.Pattern
module Registry = Xpest_datasets.Registry
module Summary = Xpest_synopsis.Summary
module Estimator = Xpest_estimator.Estimator
module Workload = Xpest_workload.Workload

(* ------------------------------------------------------------------ *)
(* Op sequences over a small key space.                                *)

type op =
  | Find of int
  | Add of int * int
  | Remove of int
  | Pin of int
  | Unpin of int
  | Clear

let op_gen ~pins =
  QCheck.Gen.(
    let key = int_range 0 9 in
    let base =
      [
        (4, map (fun k -> Find k) key);
        (6, map2 (fun k v -> Add (k, v)) key (int_range 0 100));
        (1, map (fun k -> Remove k) key);
        (1, return Clear);
      ]
    in
    let with_pins =
      if pins then
        (2, map (fun k -> Pin k) key)
        :: (1, map (fun k -> Unpin k) key)
        :: base
      else base
    in
    frequency with_pins)

let show_op = function
  | Find k -> Printf.sprintf "Find %d" k
  | Add (k, v) -> Printf.sprintf "Add (%d,%d)" k v
  | Remove k -> Printf.sprintf "Remove %d" k
  | Pin k -> Printf.sprintf "Pin %d" k
  | Unpin k -> Printf.sprintf "Unpin %d" k
  | Clear -> "Clear"

let arb_ops ~pins n =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map show_op ops))
    QCheck.Gen.(list_size (int_range 1 n) (op_gen ~pins))

(* ------------------------------------------------------------------ *)
(* Reference model: plain LRU as an association list, MRU first.       *)

module Model = struct
  type t = { capacity : int; mutable entries : (int * int) list }

  let create capacity = { capacity; entries = [] }

  let find m k =
    match List.assoc_opt k m.entries with
    | None -> None
    | Some v ->
        m.entries <- (k, v) :: List.remove_assoc k m.entries;
        Some v

  let add m k v =
    let rest = List.remove_assoc k m.entries in
    let rest =
      if List.mem_assoc k m.entries then rest
      else if List.length rest >= m.capacity then
        List.filteri (fun i _ -> i < m.capacity - 1) rest
      else rest
    in
    m.entries <- (k, v) :: rest

  let remove m k = m.entries <- List.remove_assoc k m.entries
  let clear m = m.entries <- []
  let keys m = List.map fst m.entries
end

let test_lru_differential =
  QCheck.Test.make ~name:"Lru matches the reference model" ~count:300
    (arb_ops ~pins:false 80) (fun ops ->
      let cache = Bounded_cache.create ~capacity:4 () in
      let model = Model.create 4 in
      List.for_all
        (fun op ->
          (match op with
          | Find k ->
              let a = Bounded_cache.find_opt cache k and b = Model.find model k in
              if a <> b then QCheck.Test.fail_reportf "find %d diverged" k
          | Add (k, v) ->
              Bounded_cache.add cache k v;
              Model.add model k v
          | Remove k ->
              Bounded_cache.remove cache k;
              Model.remove model k
          | Clear ->
              Bounded_cache.clear cache;
              Model.clear model
          | Pin _ | Unpin _ -> ());
          Bounded_cache.keys_by_recency cache = Model.keys model
          && Bounded_cache.length cache = List.length model.Model.entries)
        ops)

(* ------------------------------------------------------------------ *)
(* Cost conservation under a non-unit cost function.                   *)

let entry_cost k _v = (k mod 3) + 1

let test_cost_conservation =
  QCheck.Test.make ~name:"cost = sum of entry costs, within budget"
    ~count:300 (arb_ops ~pins:false 80) (fun ops ->
      let cache =
        Bounded_cache.create ~capacity:8 ~policy:Bounded_cache.segmented
          ~cost:entry_cost ()
      in
      List.for_all
        (fun op ->
          (match op with
          | Find k -> ignore (Bounded_cache.find_opt cache k)
          | Add (k, v) -> Bounded_cache.add cache k v
          | Remove k -> Bounded_cache.remove cache k
          | Clear -> Bounded_cache.clear cache
          | Pin _ | Unpin _ -> ());
          let st = Bounded_cache.stats cache in
          let summed =
            Bounded_cache.fold (fun k v acc -> acc + entry_cost k v) cache 0
          in
          st.Bounded_cache.s_cost = summed
          && st.Bounded_cache.s_cost <= st.Bounded_cache.s_capacity
          && st.Bounded_cache.s_length
             = st.Bounded_cache.s_probationary + st.Bounded_cache.s_protected)
        ops)

(* ------------------------------------------------------------------ *)
(* Pinned residents survive any insert pressure.                       *)

let test_pin_never_evicted =
  QCheck.Test.make ~name:"pinned residents never evicted" ~count:300
    (arb_ops ~pins:true 80) (fun ops ->
      let cache =
        Bounded_cache.create ~capacity:3 ~policy:Bounded_cache.segmented ()
      in
      List.for_all
        (fun op ->
          (* snapshot the keys the op must not displace: resident and
             pinned, unless the op itself removes/unpins them *)
          let protected_now =
            List.filter
              (fun k -> Bounded_cache.pinned cache k)
              (Bounded_cache.keys_by_recency cache)
          in
          let exempt =
            match op with
            | Remove k | Unpin k -> Some k
            | Clear -> None
            | _ -> Some min_int
          in
          (match op with
          | Find k -> ignore (Bounded_cache.find_opt cache k)
          | Add (k, v) -> Bounded_cache.add cache k v
          | Remove k -> Bounded_cache.remove cache k
          | Pin k -> Bounded_cache.pin cache k
          | Unpin k -> Bounded_cache.unpin cache k
          | Clear -> Bounded_cache.clear cache);
          match (op, exempt) with
          | Clear, _ -> true (* clear legitimately drops everything *)
          | _, ex ->
              List.for_all
                (fun k -> Some k = ex || Bounded_cache.mem cache k)
                protected_now)
        ops)

(* ------------------------------------------------------------------ *)
(* Protected segment stays within its ratio (unit cost).               *)

let test_segment_bound =
  QCheck.Test.make ~name:"protected segment bounded by ratio" ~count:300
    QCheck.(pair (int_range 2 16) (arb_ops ~pins:false 80))
    (fun (capacity, ops) ->
      let cache =
        Bounded_cache.create ~capacity ~policy:Bounded_cache.segmented ()
      in
      let bound =
        max 1
          (int_of_float
             (Bounded_cache.default_protected_ratio *. float_of_int capacity))
      in
      List.for_all
        (fun op ->
          (match op with
          | Find k -> ignore (Bounded_cache.find_opt cache k)
          | Add (k, v) -> Bounded_cache.add cache k v
          | Remove k -> Bounded_cache.remove cache k
          | Clear -> Bounded_cache.clear cache
          | Pin _ | Unpin _ -> ());
          let st = Bounded_cache.stats cache in
          st.Bounded_cache.s_protected <= bound
          && st.Bounded_cache.s_cost <= capacity)
        ops)

(* ------------------------------------------------------------------ *)
(* Scan resistance: the deterministic core of the S1-thrash bench.     *)

(* Hot keys are touched twice in a row each round (second touch =
   2Q promotion), then a cold scan wider than the budget flushes the
   probationary segment.  Plain LRU loses the hot keys to every scan
   and only scores the immediate repeats; Segmented keeps them
   protected from round 2 on. *)
let thrash_hits policy =
  let cache = Bounded_cache.create ~capacity:4 ~policy () in
  let touch k = ignore (Bounded_cache.find_or_add cache k (fun k -> k)) in
  for _round = 1 to 8 do
    List.iter touch [ 0; 0; 1; 1 ];
    for cold = 100 to 107 do
      touch cold
    done
  done;
  (Bounded_cache.stats cache).Bounded_cache.s_hits

let test_scan_resistance () =
  let lru = thrash_hits Bounded_cache.Lru in
  let seg = thrash_hits Bounded_cache.segmented in
  (* LRU: 2 immediate-repeat hits per round.  Segmented: 2 in round
     one, then all 4 hot touches hit. *)
  Alcotest.(check int) "lru hits" 16 lru;
  Alcotest.(check int) "segmented hits" 30 seg;
  Alcotest.(check bool) "segmented strictly out-hits lru" true (seg > lru)

(* ------------------------------------------------------------------ *)
(* Engine differential: policy changes residency, never estimates.     *)

let test_engine_policy_differential () =
  let name =
    match Registry.of_string "ssplays" with
    | Some n -> n
    | None -> Alcotest.fail "ssplays not registered"
  in
  let doc = Registry.generate ~scale:0.02 name in
  let summary = Summary.build doc in
  let workload =
    Workload.generate
      ~config:
        {
          Workload.default_config with
          num_simple = 120;
          num_branch = 120;
          seed = 42;
        }
      doc
  in
  let queries = Workload.patterns (Workload.all_items workload) in
  Alcotest.(check bool) "workload is non-trivial" true (Array.length queries > 50);
  (* tiny caches so both runs actually evict, exercising the policies *)
  let small segmented =
    { Cache_config.default with plan = 8; rel = 16; chain = 8; run = 8; segmented }
  in
  let est_lru = Estimator.create ~config:(small false) summary in
  let est_seg = Estimator.create ~config:(small true) summary in
  Array.iteri
    (fun i q ->
      let a = Estimator.estimate est_lru q
      and b = Estimator.estimate est_seg q in
      if Int64.bits_of_float a <> Int64.bits_of_float b then
        Alcotest.failf "query %d (%s): lru %.17g <> segmented %.17g" i
          (Pattern.to_string q) a b)
    queries

let () =
  Alcotest.run "bounded_cache"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            test_lru_differential;
            test_cost_conservation;
            test_pin_never_evicted;
            test_segment_bound;
          ] );
      ( "thrash",
        [
          Alcotest.test_case "scan resistance (hot + cold scan)" `Quick
            test_scan_resistance;
        ] );
      ( "differential",
        [
          Alcotest.test_case "segmented vs lru estimates bit-identical" `Quick
            test_engine_policy_differential;
        ] );
    ]
