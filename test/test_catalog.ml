(* The catalog's machinery below the routing contract: key syntax,
   the manifest's save/load/corruption round-trip, resident-set LRU
   behavior (loads, pool hits, evictions, reloads), the pool-shared
   plan cache, and per-key counter attribution in batch metrics. *)

module Counters = Xpest_util.Counters
module Pattern = Xpest_xpath.Pattern
module Summary = Xpest_synopsis.Summary
module Manifest = Xpest_synopsis.Manifest
module Synopsis_io = Xpest_synopsis.Synopsis_io
module Plan_cache = Xpest_plan.Plan_cache
module Registry = Xpest_datasets.Registry
module Catalog = Xpest_catalog.Catalog

let tmpdir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xpest_catalog_test_%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  dir

let key d v = { Catalog.dataset = d; variance = v }

(* One tiny summary per (dataset, variance); memoized so each test can
   afford many loads. *)
let summaries : (string * float, Summary.t) Hashtbl.t = Hashtbl.create 8

let summary_for (k : Catalog.key) =
  match Hashtbl.find_opt summaries (k.Catalog.dataset, k.Catalog.variance) with
  | Some s -> s
  | None ->
      let name =
        match Registry.of_string k.Catalog.dataset with
        | Some n -> n
        | None -> Alcotest.failf "unknown dataset %s" k.Catalog.dataset
      in
      let doc = Registry.generate ~scale:0.02 name in
      let s =
        Summary.build ~p_variance:k.Catalog.variance
          ~o_variance:k.Catalog.variance doc
      in
      Hashtbl.add summaries (k.Catalog.dataset, k.Catalog.variance) s;
      s

(* ------------------------------------------------------------------ *)
(* Keys.                                                               *)

let test_key_syntax () =
  let ok s d v =
    match Catalog.key_of_string s with
    | Ok k ->
        Alcotest.(check string) (s ^ ": dataset") d k.Catalog.dataset;
        Alcotest.(check (float 0.0)) (s ^ ": variance") v k.Catalog.variance
    | Error e -> Alcotest.failf "%s should parse, got: %s" s e
  in
  let bad s =
    match Catalog.key_of_string s with
    | Ok k -> Alcotest.failf "%s should not parse (got %s)" s (Catalog.key_to_string k)
    | Error _ -> ()
  in
  ok "dblp" "dblp" 0.0;
  ok "dblp@2" "dblp" 2.0;
  ok "dblp@2.5" "dblp" 2.5;
  bad "";
  bad "@1";
  bad "dblp@";
  bad "dblp@-1";
  bad "dblp@nan";
  bad "dblp@inf";
  (* round-trip through the printed form *)
  List.iter
    (fun k ->
      match Catalog.key_of_string (Catalog.key_to_string k) with
      | Ok k' ->
          Alcotest.(check string) "round-trip dataset" k.Catalog.dataset
            k'.Catalog.dataset;
          Alcotest.(check (float 0.0)) "round-trip variance" k.Catalog.variance
            k'.Catalog.variance
      | Error e -> Alcotest.failf "round-trip failed: %s" e)
    [ key "ssplays" 0.0; key "dblp" 2.0; key "xmark" 12.5 ]

(* ------------------------------------------------------------------ *)
(* Manifest round-trip.                                                *)

let test_manifest_roundtrip () =
  let dir = tmpdir () in
  let k0 = key "ssplays" 0.0 and k2 = key "ssplays" 2.0 in
  let m = Manifest.empty in
  let m = Catalog.save_entry ~dir m k0 (summary_for k0) in
  let m = Catalog.save_entry ~dir m k2 (summary_for k2) in
  let path = Filename.concat dir Catalog.manifest_filename in
  Manifest.save m path;
  (* the manifest file is itself a recognized wire container *)
  (match Synopsis_io.kind (Synopsis_io.info path) with
  | `Catalog_manifest -> ()
  | `Synopsis | `Sketch | `Unknown ->
      Alcotest.fail "manifest not recognized as manifest");
  let m' = Manifest.load path in
  Alcotest.(check int) "entries survive" 2 (List.length m'.Manifest.entries);
  (match Manifest.find m' ~dataset:"ssplays" ~variance:2.0 with
  | None -> Alcotest.fail "entry (ssplays, 2) lost"
  | Some e ->
      Alcotest.(check string) "file name" (Catalog.key_filename k2)
        e.Manifest.file;
      let i = Synopsis_io.info (Filename.concat dir e.Manifest.file) in
      Alcotest.(check int) "bytes match file" i.Synopsis_io.total_bytes
        e.Manifest.bytes;
      Alcotest.(check int64) "checksum matches file" i.Synopsis_io.checksum
        e.Manifest.checksum);
  (* re-saving a key replaces its entry instead of appending *)
  let m'' = Catalog.save_entry ~dir m' k2 (summary_for k2) in
  Alcotest.(check int) "replace, not append" 2
    (List.length m''.Manifest.entries);
  (* a manifest-backed catalog serves the same floats as fresh
     estimators over the same summaries *)
  let cat = Catalog.of_manifest ~dir m' in
  let q = Pattern.of_string "//SPEECH/LINE" in
  let expect k =
    Xpest_estimator.Estimator.estimate
      (Xpest_estimator.Estimator.create (summary_for k))
      q
  in
  List.iter
    (fun k ->
      Alcotest.(check (float 0.0))
        (Catalog.key_to_string k)
        (expect k) (Catalog.estimate cat k q))
    [ k0; k2 ]

let test_manifest_corruption () =
  let dir = tmpdir () in
  let k = key "dblp" 0.0 in
  let m = Catalog.save_entry ~dir Manifest.empty k (summary_for k) in
  let mpath = Filename.concat dir Catalog.manifest_filename in
  Manifest.save m mpath;
  (* flip one byte in the manifest body: load must reject it *)
  let bytes =
    let ic = open_in_bin mpath in
    let n = in_channel_length ic in
    let b = really_input_string ic n in
    close_in ic;
    Bytes.of_string b
  in
  let mid = Bytes.length bytes / 2 in
  Bytes.set bytes mid (Char.chr (Char.code (Bytes.get bytes mid) lxor 0x40));
  let corrupt = Filename.concat dir "corrupt.manifest" in
  let oc = open_out_bin corrupt in
  output_bytes oc bytes;
  close_out oc;
  (match Manifest.load_result corrupt with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted manifest loaded");
  (* rebuild the synopsis behind the manifest's back: the loader must
     notice the size/checksum mismatch instead of serving it *)
  let other = Summary.build ~p_variance:4.0 ~o_variance:4.0
      (Registry.generate ~scale:0.02 Registry.Dblp)
  in
  Summary.save other (Filename.concat dir (Catalog.key_filename k));
  let cat = Catalog.of_manifest ~dir (Manifest.load mpath) in
  (match
     Catalog.estimate cat k (Pattern.of_string "//inproceedings/title")
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "stale synopsis served despite manifest mismatch");
  (* an unknown key is an error, not a crash *)
  match
    Catalog.estimate cat (key "nosuch" 0.0)
      (Pattern.of_string "//inproceedings/title")
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown key served"

(* ------------------------------------------------------------------ *)
(* Resident-set eviction behavior (segmented policy, the default).     *)

let test_lru_behavior () =
  let loads = ref [] in
  let loader k =
    loads := Catalog.key_to_string k :: !loads;
    summary_for k
  in
  let k1 = key "ssplays" 0.0
  and k2 = key "ssplays" 2.0
  and k3 = key "dblp" 0.0 in
  let cat = Catalog.create ~resident_capacity:2 ~loader () in
  let q = Pattern.of_string "//SPEECH" in
  ignore (Catalog.estimate cat k1 q);
  ignore (Catalog.estimate cat k2 q);
  ignore (Catalog.estimate cat k1 q) (* hit: promotes k1 to protected *);
  ignore (Catalog.estimate cat k3 q) (* evicts k2, the probationary LRU *);
  ignore (Catalog.estimate cat k2 q) (* reload; evicts one-shot k3 *);
  let st : Catalog.stats = Catalog.stats cat in
  Alcotest.(check int) "loads" 4 st.Catalog.loads;
  Alcotest.(check int) "hits" 1 st.Catalog.hits;
  Alcotest.(check int) "evictions" 2 st.Catalog.evictions;
  Alcotest.(check int) "resident" 2 st.Catalog.resident;
  Alcotest.(check int) "resident capacity" 2 st.Catalog.resident_capacity;
  (* scan resistance: twice-touched k1 sits protected and survives the
     k3/k2 churn (plain LRU would have evicted it for k2); one segment
     slot each *)
  Alcotest.(check int) "protected" 1 st.Catalog.resident_protected;
  Alcotest.(check int) "probationary" 1 st.Catalog.resident_probationary;
  Alcotest.(check (list string))
    "retention order (protected first)" [ "ssplays@0"; "ssplays@2" ]
    (List.map Catalog.key_to_string (Catalog.keys_by_recency cat));
  Alcotest.(check (list string))
    "load order"
    [ "ssplays@0"; "ssplays@2"; "dblp@0"; "ssplays@2" ]
    (List.rev !loads);
  (* the pool-shared plan cache survived every eviction: q was
     compiled exactly once across all five estimates *)
  Alcotest.(check int) "one compiled plan" 1
    st.Catalog.plan_cache.Plan_cache.s_length;
  match Catalog.create ~resident_capacity:0 ~loader () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "resident_capacity 0 accepted"

(* The policy knob restores the historical plain-LRU trace: same
   sequence as above, but the twice-touched k1 is NOT protected and
   the k3/k2 churn evicts it. *)
let test_lru_policy_knob () =
  let k1 = key "ssplays" 0.0
  and k2 = key "ssplays" 2.0
  and k3 = key "dblp" 0.0 in
  let cat =
    Catalog.create ~resident_capacity:2
      ~resident_policy:Xpest_util.Bounded_cache.Lru ~loader:summary_for ()
  in
  let q = Pattern.of_string "//SPEECH" in
  List.iter (fun k -> ignore (Catalog.estimate cat k q)) [ k1; k2; k1; k3; k2 ];
  let st : Catalog.stats = Catalog.stats cat in
  Alcotest.(check int) "loads" 4 st.Catalog.loads;
  Alcotest.(check int) "hits" 1 st.Catalog.hits;
  Alcotest.(check int) "evictions" 2 st.Catalog.evictions;
  Alcotest.(check int) "nothing protected under Lru" 0
    st.Catalog.resident_protected;
  Alcotest.(check (list string))
    "recency order" [ "ssplays@2"; "dblp@0" ]
    (List.map Catalog.key_to_string (Catalog.keys_by_recency cat))

(* A retired estimator must keep serving.  [acquire_r]'s contract only
   guarantees the handle until the next acquire — eviction may retire
   it from the resident set — but retirement severs pooling, not the
   estimator: it owns its summary and caches, so a held handle must
   stay bit-identical, and a re-acquire of the same key must load a
   fresh estimator serving the same floats. *)
let test_retired_estimator_still_serves () =
  let k1 = key "ssplays" 0.0 and k2 = key "dblp" 0.0 in
  let cat = Catalog.create ~resident_capacity:1 ~loader:summary_for () in
  let q = Pattern.of_string "//SPEECH/LINE" in
  let acquire k =
    match Catalog.acquire_r cat k with
    | Ok e -> e
    | Error e ->
        Alcotest.failf "acquire %s: %s" (Catalog.key_to_string k)
          (Xpest_util.Xpest_error.to_string e)
  in
  let serve label est =
    match Xpest_estimator.Estimator.try_estimate est q with
    | Ok v -> Int64.bits_of_float v
    | Error e ->
        Alcotest.failf "%s: %s" label (Xpest_util.Xpest_error.to_string e)
  in
  let est1 = acquire k1 in
  let before = serve "live estimator" est1 in
  (* capacity 1: acquiring k2 retires k1's estimator *)
  ignore (acquire k2);
  let st : Catalog.stats = Catalog.stats cat in
  Alcotest.(check int) "k1 evicted" 1 st.Catalog.evictions;
  Alcotest.(check int64) "retired handle serves bit-identically" before
    (serve "retired estimator" est1);
  (* re-acquire reloads: a fresh estimator, same floats *)
  let est1' = acquire k1 in
  Alcotest.(check bool) "re-acquire built a fresh estimator" false
    (est1' == est1);
  Alcotest.(check int64) "re-acquired estimator serves bit-identically"
    before
    (serve "re-acquired estimator" est1');
  let st : Catalog.stats = Catalog.stats cat in
  Alcotest.(check int) "three loads (k1, k2, k1 again)" 3 st.Catalog.loads

(* ------------------------------------------------------------------ *)
(* Byte-budgeted residency.                                            *)

let test_byte_budget () =
  let k1 = key "ssplays" 0.0
  and k2 = key "ssplays" 2.0
  and k3 = key "dblp" 0.0 in
  let size k = Summary.size_bytes (summary_for k) in
  (* exact wire size: decode knows it, and an encode round-trip agrees *)
  Alcotest.(check int) "size_bytes is the wire size" (size k1)
    (String.length (Summary.encode (summary_for k1)));
  let s = Summary.decode (Summary.encode (summary_for k1)) in
  Alcotest.(check int) "decode records the size" (size k1)
    (Summary.size_bytes s);
  (* a budget one byte short of all three forces exactly one eviction *)
  let budget = size k1 + size k2 + size k3 - 1 in
  let config =
    { Xpest_plan.Cache_config.default with resident_bytes = Some budget }
  in
  let cat = Catalog.create ~config ~loader:summary_for () in
  let q = Pattern.of_string "//SPEECH" in
  List.iter (fun k -> ignore (Catalog.estimate cat k q)) [ k1; k2; k3 ];
  let st : Catalog.stats = Catalog.stats cat in
  Alcotest.(check int) "budget reported as capacity" budget
    st.Catalog.resident_capacity;
  Alcotest.(check int) "one eviction" 1 st.Catalog.evictions;
  Alcotest.(check int) "two resident" 2 st.Catalog.resident;
  Alcotest.(check int) "cost is the resident bytes"
    (size k2 + size k3) st.Catalog.resident_cost;
  Alcotest.(check int) "resident_bytes equals cost" st.Catalog.resident_cost
    st.Catalog.resident_bytes;
  match
    Catalog.create
      ~config:{ config with resident_bytes = Some 0 }
      ~loader:summary_for ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "resident_bytes 0 accepted"

(* ------------------------------------------------------------------ *)
(* Pinning.                                                            *)

let test_pinning () =
  let k1 = key "ssplays" 0.0
  and k2 = key "ssplays" 2.0
  and k3 = key "dblp" 0.0 in
  let cat = Catalog.create ~resident_capacity:1 ~loader:summary_for () in
  let q = Pattern.of_string "//SPEECH" in
  (* pin before the key is even resident: pins stick to the key *)
  Catalog.pin cat k1;
  Alcotest.(check bool) "pinned before load" true (Catalog.pinned cat k1);
  ignore (Catalog.estimate cat k1 q);
  ignore (Catalog.estimate cat k2 q);
  let st : Catalog.stats = Catalog.stats cat in
  (* nothing evictable: the pinned k1 is admitted alongside k2, over
     budget rather than dropped *)
  Alcotest.(check int) "pinned entry never evicted" 0 st.Catalog.evictions;
  Alcotest.(check int) "both resident (over budget)" 2 st.Catalog.resident;
  Alcotest.(check int) "one resident pin" 1 st.Catalog.resident_pinned;
  ignore (Catalog.estimate cat k1 q);
  let st = Catalog.stats cat in
  Alcotest.(check int) "pinned key hits, no reload" 2 st.Catalog.loads;
  (* unpin: the next insert pressure evicts k1 like anyone else *)
  Catalog.unpin cat k1;
  ignore (Catalog.estimate cat k3 q);
  ignore (Catalog.estimate cat k1 q);
  let st = Catalog.stats cat in
  Alcotest.(check bool) "unpinned key evicts again" true
    (st.Catalog.evictions > 0);
  Alcotest.(check int) "k1 reloaded after unpin+evict" 4 st.Catalog.loads

(* ------------------------------------------------------------------ *)
(* Per-key metric attribution.                                         *)

let test_batch_metrics () =
  let cat = Catalog.create ~loader:summary_for () in
  let qa = Pattern.of_string "//SPEECH/LINE" in
  let qb = Pattern.of_string "//inproceedings/title" in
  let k1 = key "ssplays" 0.0 and k2 = key "dblp" 0.0 in
  let pairs = [| (k1, qa); (k2, qb); (k1, qa); (k2, qa) |] in
  Alcotest.(check (list (pair string (list (pair string int)))))
    "no metrics before any batch" []
    (List.map
       (fun (k, d) -> (Catalog.key_to_string k, d))
       (Catalog.last_batch_metrics cat));
  Counters.with_enabled (fun () -> ignore (Catalog.estimate_batch cat pairs));
  let metrics = Catalog.last_batch_metrics cat in
  Alcotest.(check (list string))
    "one row per group, in first-appearance order" [ "ssplays@0"; "dblp@0" ]
    (List.map (fun (k, _) -> Catalog.key_to_string k) metrics);
  let delta k name =
    match List.assoc_opt name (List.assoc k metrics) with
    | Some v -> v
    | None -> 0
  in
  (* group sizes are attributed exactly: 2 routed queries hit ssplays
     (the duplicate dedupes to 1 estimate), 2 hit dblp *)
  Alcotest.(check int) "ssplays group size" 2 (delta k1 "estimator.batch.queries");
  Alcotest.(check int) "dblp group size" 2 (delta k2 "estimator.batch.queries");
  Alcotest.(check int) "ssplays dedupe" 1 (delta k1 "estimator.batch.deduped");
  Alcotest.(check int) "one load per group" 1 (delta k1 "catalog.summary.load");
  Alcotest.(check int) "one load per group" 1 (delta k2 "catalog.summary.load");
  (* qa was compiled in the first group; the second group's qa is a
     cross-summary plan hit *)
  Alcotest.(check int) "cross-summary plan hit" 1
    (delta k2 "estimator.plan_cache.hit");
  (* counters off: the batch still works, metrics are just empty *)
  ignore (Catalog.estimate_batch cat pairs);
  Alcotest.(check int) "no metrics when counters are off" 0
    (List.length (Catalog.last_batch_metrics cat))

let () =
  Alcotest.run "catalog"
    [
      ( "keys",
        [ Alcotest.test_case "syntax + round-trip" `Quick test_key_syntax ] );
      ( "manifest",
        [
          Alcotest.test_case "save/load round-trip" `Quick
            test_manifest_roundtrip;
          Alcotest.test_case "corruption + staleness" `Quick
            test_manifest_corruption;
        ] );
      ( "resident_set",
        [
          Alcotest.test_case "segmented loads/hits/evictions" `Quick
            test_lru_behavior;
          Alcotest.test_case "plain-LRU policy knob" `Quick
            test_lru_policy_knob;
          Alcotest.test_case "retired estimator still serves" `Quick
            test_retired_estimator_still_serves;
          Alcotest.test_case "byte-budgeted residency" `Quick test_byte_budget;
          Alcotest.test_case "pinning" `Quick test_pinning;
        ]
      );
      ( "metrics",
        [
          Alcotest.test_case "per-key attribution" `Quick test_batch_metrics;
        ] );
    ]
