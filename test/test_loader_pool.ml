(* Unit tests for the loader-pool future seam underneath the serving
   pipeline: the blocking policy's lazy run-at-first-await semantics
   (the bit-identity anchor), the pool policy's completion and
   work-stealing, exception transparency through await, single-shot
   await (a consumed future raises typed, never replays), and the
   size-1 degradation that makes --load-domains 1 always safe. *)

module Domain_pool = Xpest_util.Domain_pool
module Loader_pool = Xpest_util.Loader_pool
module E = Xpest_util.Xpest_error

(* A second await of the same future must raise the typed single-shot
   error — never hang, never hand back a stale replay. *)
let check_consumed label fut =
  match Loader_pool.await fut with
  | _ -> Alcotest.failf "%s: consumed future returned a value" label
  | exception E.Error (E.Internal _) -> ()
  | exception e ->
      Alcotest.failf "%s: expected a typed Internal error, got %s" label
        (Printexc.to_string e)

let test_blocking_lazy_await_order () =
  let loads = Loader_pool.blocking in
  Alcotest.(check int) "blocking reports one domain" 1
    (Loader_pool.domains loads);
  Alcotest.(check bool) "blocking is not concurrent" false
    (Loader_pool.concurrent loads);
  let trace = ref [] in
  let mk tag = Loader_pool.submit loads (fun () -> trace := tag :: !trace; tag) in
  let fa = mk "a" and fb = mk "b" and fc = mk "c" in
  (* nothing runs at submission *)
  Alcotest.(check (list string)) "submit runs nothing" [] !trace;
  (* execution order is await order, not submission order *)
  Alcotest.(check string) "await c" "c" (Loader_pool.await fc);
  Alcotest.(check string) "await a" "a" (Loader_pool.await fa);
  Alcotest.(check string) "await b" "b" (Loader_pool.await fb);
  Alcotest.(check (list string))
    "thunks ran in await order" [ "c"; "a"; "b" ]
    (List.rev !trace);
  (* await is single-shot: a re-await raises typed and runs nothing *)
  check_consumed "re-await a" fa;
  Alcotest.(check int) "no re-execution" 3 (List.length !trace)

let test_blocking_exception_once () =
  let runs = ref 0 in
  let fut =
    Loader_pool.submit Loader_pool.blocking (fun () ->
        incr runs;
        failwith "load exploded")
  in
  (match Loader_pool.await fut with
  | _ -> Alcotest.fail "first await: exception was swallowed"
  | exception Failure msg ->
      Alcotest.(check string) "first await: the thunk's exception"
        "load exploded" msg);
  (* a raising thunk consumes the future too: the second await raises
     the single-shot error, not a replay of the original exception *)
  check_consumed "second await" fut;
  Alcotest.(check int) "thunk ran once" 1 !runs

let test_pool_completion () =
  Domain_pool.with_pool ~domains:4 (fun p ->
      let loads = Loader_pool.over p in
      Alcotest.(check int) "domains is the pool size" 4
        (Loader_pool.domains loads);
      Alcotest.(check bool) "a pool of 4 is concurrent" true
        (Loader_pool.concurrent loads);
      let futs =
        Array.init 32 (fun i -> Loader_pool.submit loads (fun () -> i * i))
      in
      (* await in reverse order: completion must not depend on it *)
      for i = 31 downto 0 do
        Alcotest.(check int)
          (Printf.sprintf "future %d" i)
          (i * i)
          (Loader_pool.await futs.(i))
      done)

let test_pool_exception_per_future () =
  Domain_pool.with_pool ~domains:4 (fun p ->
      let loads = Loader_pool.over p in
      let futs =
        Array.init 16 (fun i ->
            Loader_pool.submit loads (fun () ->
                if i mod 3 = 0 then failwith (Printf.sprintf "boom %d" i)
                else i))
      in
      (* each future carries exactly its own outcome: raises stay with
         the raising load, neighbours are untouched *)
      Array.iteri
        (fun i fut ->
          if i mod 3 = 0 then
            match Loader_pool.await fut with
            | _ -> Alcotest.failf "future %d: exception was swallowed" i
            | exception Failure msg ->
                Alcotest.(check string)
                  (Printf.sprintf "future %d re-raises its own failure" i)
                  (Printf.sprintf "boom %d" i)
                  msg
          else
            Alcotest.(check int)
              (Printf.sprintf "future %d unaffected" i)
              i (Loader_pool.await fut))
        futs;
      (* the pool survives raising loads *)
      Alcotest.(check int) "pool still serves" 7
        (Loader_pool.await (Loader_pool.submit loads (fun () -> 7))))

let test_await_steals_queued_work () =
  (* a pool of 2 has one worker domain; submit more jobs than it can
     have started, then await the last one — the awaiting domain must
     work-steal the queue dry rather than park behind it *)
  Domain_pool.with_pool ~domains:2 (fun p ->
      let loads = Loader_pool.over p in
      let ran = Atomic.make 0 in
      let futs =
        Array.init 24 (fun i ->
            Loader_pool.submit loads (fun () ->
                ignore (Atomic.fetch_and_add ran 1);
                i))
      in
      Alcotest.(check int) "await of the last future" 23
        (Loader_pool.await futs.(23));
      (* the steal loop only guarantees the awaited future's outcome;
         drain the rest normally (each exactly once: await is
         single-shot) *)
      Array.iteri
        (fun i fut ->
          if i <> 23 then
            Alcotest.(check int) (Printf.sprintf "future %d" i) i
              (Loader_pool.await fut))
        futs;
      Alcotest.(check int) "every thunk ran exactly once" 24 (Atomic.get ran);
      check_consumed "re-await of the stolen future" futs.(23))

let test_size1_pool_is_blocking () =
  Domain_pool.with_pool ~domains:1 (fun p ->
      let loads = Loader_pool.over p in
      Alcotest.(check bool) "a size-1 pool is not concurrent" false
        (Loader_pool.concurrent loads);
      let trace = ref [] in
      let mk tag =
        Loader_pool.submit loads (fun () -> trace := tag :: !trace; tag)
      in
      let fa = mk "a" and fb = mk "b" in
      Alcotest.(check (list string)) "submit runs nothing" [] !trace;
      Alcotest.(check string) "await b" "b" (Loader_pool.await fb);
      Alcotest.(check string) "await a" "a" (Loader_pool.await fa);
      (* degraded to the blocking policy: lazy, await-ordered *)
      Alcotest.(check (list string))
        "await order, like blocking" [ "b"; "a" ]
        (List.rev !trace))

let test_submit_after_shutdown_is_typed () =
  let escaped = ref None in
  Domain_pool.with_pool ~domains:2 (fun p -> escaped := Some p);
  match !escaped with
  | None -> Alcotest.fail "pool did not escape"
  | Some p -> (
      Alcotest.(check bool) "pool reports stopped" true (Domain_pool.stopped p);
      (* submit itself must not raise: the refusal is typed and
         surfaces at the commit point, through await *)
      let fut = Loader_pool.submit (Loader_pool.over p) (fun () -> 0) in
      (match Loader_pool.await fut with
      | _ -> Alcotest.fail "await of a poisoned future should raise"
      | exception E.Error (E.Overloaded _) -> ()
      | exception e ->
          Alcotest.failf "expected a typed Overloaded error, got %s"
            (Printexc.to_string e));
      (* poisoning is a property of the future, not a consumed
         outcome: every await raises the same typed refusal *)
      match Loader_pool.await fut with
      | _ -> Alcotest.fail "second await of a poisoned future should raise"
      | exception E.Error (E.Overloaded _) -> ()
      | exception e ->
          Alcotest.failf "poisoned futures stay Overloaded, got %s"
            (Printexc.to_string e))

let test_double_await_is_typed () =
  Domain_pool.with_pool ~domains:4 (fun p ->
      let loads = Loader_pool.over p in
      let fut = Loader_pool.submit loads (fun () -> 41) in
      Alcotest.(check int) "first await" 41 (Loader_pool.await fut);
      check_consumed "queued future, second await" fut;
      (* consumption is permanent, not a one-time trip *)
      check_consumed "queued future, third await" fut)

let test_await_after_shutdown_consumed_is_typed () =
  let p = Domain_pool.create ~domains:2 () in
  let loads = Loader_pool.over p in
  let fut = Loader_pool.submit loads (fun () -> 5) in
  Alcotest.(check int) "await before shutdown" 5 (Loader_pool.await fut);
  Domain_pool.shutdown p;
  (* the workers are gone: a re-await of the consumed future must
     raise the typed single-shot error immediately — not park in the
     steal loop, and not hand back the stale 5 *)
  check_consumed "consumed future awaited after shutdown" fut

let test_pending_futures_survive_shutdown () =
  (* futures still pending when the pool shuts down must complete —
     shutdown drains the queue — and await must return their real
     outcomes afterwards, values and exceptions alike *)
  let p = Domain_pool.create ~domains:2 () in
  let loads = Loader_pool.over p in
  let futs =
    Array.init 16 (fun i ->
        Loader_pool.submit loads (fun () ->
            if i mod 5 = 4 then failwith (Printf.sprintf "late boom %d" i)
            else i * 3))
  in
  Domain_pool.shutdown p;
  Alcotest.(check bool) "stopped after shutdown" true (Domain_pool.stopped p);
  Alcotest.(check int) "no job left pending" 0 (Loader_pool.pending loads);
  Array.iteri
    (fun i fut ->
      if i mod 5 = 4 then
        match Loader_pool.await fut with
        | _ -> Alcotest.failf "future %d: exception was swallowed" i
        | exception Failure msg ->
            Alcotest.(check string)
              (Printf.sprintf "future %d kept its own failure" i)
              (Printf.sprintf "late boom %d" i)
              msg
      else
        Alcotest.(check int)
          (Printf.sprintf "future %d completed across shutdown" i)
          (i * 3)
          (Loader_pool.await fut))
    futs

let test_pending_accounting () =
  Alcotest.(check int) "blocking has no queue" 0
    (Loader_pool.pending Loader_pool.blocking);
  Domain_pool.with_pool ~domains:2 (fun p ->
      let loads = Loader_pool.over p in
      let futs =
        Array.init 8 (fun i -> Loader_pool.submit loads (fun () -> i))
      in
      Array.iter (fun fut -> ignore (Loader_pool.await fut)) futs;
      (* every await returned, so every job completed and decremented *)
      Alcotest.(check int) "queue drains back to zero" 0
        (Loader_pool.pending loads))

let () =
  Alcotest.run "loader_pool"
    [
      ( "blocking",
        [
          Alcotest.test_case "lazy, await-ordered, single-shot" `Quick
            test_blocking_lazy_await_order;
          Alcotest.test_case "exception propagates exactly once" `Quick
            test_blocking_exception_once;
        ] );
      ( "pool",
        [
          Alcotest.test_case "completion at any await order" `Quick
            test_pool_completion;
          Alcotest.test_case "exceptions stay per-future" `Quick
            test_pool_exception_per_future;
          Alcotest.test_case "await work-steals the queue" `Quick
            test_await_steals_queued_work;
          Alcotest.test_case "size-1 pool degrades to blocking" `Quick
            test_size1_pool_is_blocking;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "submit after shutdown is typed" `Quick
            test_submit_after_shutdown_is_typed;
          Alcotest.test_case "double await is typed" `Quick
            test_double_await_is_typed;
          Alcotest.test_case "await after shutdown is typed" `Quick
            test_await_after_shutdown_consumed_is_typed;
          Alcotest.test_case "pending futures survive shutdown" `Quick
            test_pending_futures_survive_shutdown;
          Alcotest.test_case "pending accounting drains to zero" `Quick
            test_pending_accounting;
        ] );
    ]
