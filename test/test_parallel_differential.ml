(* Randomized differential testing of the domain-parallel batch paths
   against their sequential twins.

   The contract under test is bit-identity: for any domain count, any
   workload (duplicates included), any resident capacity (eviction
   mid-batch included) and any injected-fault schedule, the parallel
   run returns byte-for-byte the same results as the sequential run —
   same floats, same typed errors, in input order — and the catalog's
   acquire-side statistics (loads, hits, evictions, retries,
   quarantines) match exactly, because acquisition stays sequential by
   construction.  Everything is driven by fixed seeds, so a violation
   reproduces. *)

module Counters = Xpest_util.Counters
module Domain_pool = Xpest_util.Domain_pool
module Loader_pool = Xpest_util.Loader_pool
module Fault = Xpest_util.Fault
module E = Xpest_util.Xpest_error
module Pattern = Xpest_xpath.Pattern
module Summary = Xpest_synopsis.Summary
module Manifest = Xpest_synopsis.Manifest
module Registry = Xpest_datasets.Registry
module Estimator = Xpest_estimator.Estimator
module Workload = Xpest_workload.Workload
module Catalog = Xpest_catalog.Catalog

let domain_counts = [ 1; 2; 4; 8 ]
let load_domain_counts = [ 1; 2; 4 ]
let fault_seeds = [ 11; 23 ]
let fault_rates = [ 0.01; 0.1 ]

let bits = Int64.bits_of_float

let check_bits label expected got =
  if not (Int64.equal (bits expected) (bits got)) then
    Alcotest.failf "%s: %h <> %h (bit drift)" label expected got

(* ------------------------------------------------------------------ *)
(* Shared fixtures.                                                    *)

let summaries : (string * float, Summary.t) Hashtbl.t = Hashtbl.create 8

let summary_for (k : Catalog.key) =
  match Hashtbl.find_opt summaries (k.Catalog.dataset, k.Catalog.variance) with
  | Some s -> s
  | None ->
      let name =
        match Registry.of_string k.Catalog.dataset with
        | Some n -> n
        | None -> Alcotest.failf "unknown dataset %s" k.Catalog.dataset
      in
      let doc = Registry.generate ~scale:0.02 name in
      let s =
        Summary.build ~p_variance:k.Catalog.variance
          ~o_variance:k.Catalog.variance doc
      in
      Hashtbl.add summaries (k.Catalog.dataset, k.Catalog.variance) s;
      s

let key d v = { Catalog.dataset = d; variance = v }

(* Workload patterns with deliberate duplicates: every pattern appears
   again later in the array, so the dedupe path is always exercised. *)
let patterns_with_duplicates ~wseed doc =
  let config =
    { Workload.default_config with seed = wseed; num_simple = 400; num_branch = 400 }
  in
  let w = Workload.generate ~config doc in
  let base =
    List.concat
      [
        w.Workload.simple;
        w.Workload.branch;
        w.Workload.order_branch_target;
        w.Workload.order_trunk_target;
      ]
    |> List.map (fun (it : Workload.item) -> it.Workload.pattern)
  in
  Array.of_list (base @ List.rev base)

(* ------------------------------------------------------------------ *)
(* Estimator.estimate_many: pool vs sequential.                        *)

let test_estimate_many_differential () =
  let doc = Registry.generate ~scale:0.05 Registry.Ssplays in
  let summary = Summary.build ~p_variance:0.0 ~o_variance:0.0 doc in
  let qs = patterns_with_duplicates ~wseed:9201 doc in
  if Array.length qs < 100 then
    Alcotest.failf "workload too small: %d patterns" (Array.length qs);
  let reference = Estimator.estimate_many (Estimator.create summary) qs in
  List.iter
    (fun domains ->
      Domain_pool.with_pool ~domains (fun pool ->
          let est = Estimator.create summary in
          let parallel = Estimator.estimate_many ~pool est qs in
          Alcotest.(check int)
            (Printf.sprintf "%d domains: result count" domains)
            (Array.length reference) (Array.length parallel);
          Array.iteri
            (fun i v ->
              check_bits
                (Printf.sprintf "%d domains, query %d (%s)" domains i
                   (Pattern.to_string qs.(i)))
                reference.(i) v)
            parallel;
          (* the same pool re-used for a second batch stays correct
             (workers idle between run_alls, no leftover state) *)
          let again = Estimator.estimate_many ~pool est qs in
          Array.iteri
            (fun i v ->
              check_bits
                (Printf.sprintf "%d domains, warm rerun, query %d" domains i)
                reference.(i) v)
            again))
    domain_counts

(* try_estimate_many: same contract through the error-isolating
   wrapper. *)
let test_try_estimate_many_differential () =
  let doc = Registry.generate ~scale:0.05 Registry.Dblp in
  let summary = Summary.build ~p_variance:2.0 ~o_variance:2.0 doc in
  let qs = patterns_with_duplicates ~wseed:9202 doc in
  let reference = Estimator.try_estimate_many (Estimator.create summary) qs in
  List.iter
    (fun domains ->
      Domain_pool.with_pool ~domains (fun pool ->
          let parallel =
            Estimator.try_estimate_many ~pool (Estimator.create summary) qs
          in
          Array.iteri
            (fun i r ->
              match (reference.(i), r) with
              | Ok a, Ok b ->
                  check_bits
                    (Printf.sprintf "%d domains, query %d" domains i)
                    a b
              | Error a, Error b ->
                  Alcotest.(check string)
                    (Printf.sprintf "%d domains, query %d: same error" domains i)
                    (E.to_string a) (E.to_string b)
              | Ok _, Error e ->
                  Alcotest.failf "%d domains, query %d: Ok became %s" domains i
                    (E.to_string e)
              | Error e, Ok _ ->
                  Alcotest.failf "%d domains, query %d: %s became Ok" domains i
                    (E.to_string e))
            parallel))
    domain_counts

(* ------------------------------------------------------------------ *)
(* Catalog batches: sequential vs parallel twins over one directory.   *)

let catalog_dir =
  lazy
    (let dir =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "xpest_parallel_diff_%d" (Unix.getpid ()))
     in
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
     let m =
       List.fold_left
         (fun m k -> Catalog.save_entry ~dir m k (summary_for k))
         Manifest.empty
         [ key "ssplays" 0.0; key "ssplays" 2.0; key "dblp" 0.0 ]
     in
     Manifest.save m (Filename.concat dir Catalog.manifest_filename);
     dir)

let load_manifest dir =
  match Manifest.load_typed (Filename.concat dir Catalog.manifest_filename) with
  | Ok m -> m
  | Error e -> Alcotest.failf "manifest load failed: %s" (E.to_string e)

(* Three keys interleaved against resident capacity 2: acquires evict
   mid-batch, estimators outlive their eviction, reloads happen round
   after round. *)
let routed_pairs () =
  let k1 = key "ssplays" 0.0
  and k2 = key "ssplays" 2.0
  and k3 = key "dblp" 0.0 in
  let p = Pattern.of_string in
  [|
    (k1, p "//SPEECH/LINE");
    (k3, p "//inproceedings/title");
    (k2, p "//ACT[/{SCENE}]");
    (k1, p "//PLAY//{SPEECH}");
    (k2, p "//SPEECH/LINE");
    (k3, p "//article/{author}");
    (k1, p "//SPEECH/LINE");
    (k3, p "//inproceedings/title");
    (k2, p "//ACT[/{SCENE}]");
    (k1, p "//SPEECH//{WORD}");
  |]

let check_same_stats label (a : Catalog.stats) (b : Catalog.stats) =
  let field name v_a v_b =
    Alcotest.(check int) (Printf.sprintf "%s: %s" label name) v_a v_b
  in
  field "resident" a.Catalog.resident b.Catalog.resident;
  field "loads" a.Catalog.loads b.Catalog.loads;
  field "hits" a.Catalog.hits b.Catalog.hits;
  field "evictions" a.Catalog.evictions b.Catalog.evictions;
  field "failures" a.Catalog.failures b.Catalog.failures;
  field "retries" a.Catalog.retries b.Catalog.retries;
  field "quarantines" a.Catalog.quarantines b.Catalog.quarantines;
  field "degraded_hits" a.Catalog.degraded_hits b.Catalog.degraded_hits

let compare_results label reference results =
  Alcotest.(check int)
    (label ^ ": result count")
    (Array.length reference) (Array.length results);
  Array.iteri
    (fun i r ->
      match (reference.(i), r) with
      | Ok a, Ok b -> check_bits (Printf.sprintf "%s, query %d" label i) a b
      | Error a, Error b ->
          Alcotest.(check string)
            (Printf.sprintf "%s, query %d: same error" label i)
            (E.to_string a) (E.to_string b)
      | Ok _, Error e ->
          Alcotest.failf "%s, query %d: Ok became %s" label i (E.to_string e)
      | Error e, Ok _ ->
          Alcotest.failf "%s, query %d: %s became Ok" label i (E.to_string e))
    results

let test_catalog_batch_differential () =
  let dir = Lazy.force catalog_dir in
  let m = load_manifest dir in
  let pairs = routed_pairs () in
  List.iter
    (fun domains ->
      (* fresh twin catalogs per domain count: identical initial state *)
      let seq_cat = Catalog.of_manifest ~resident_capacity:2 ~dir m in
      let par_cat = Catalog.of_manifest ~resident_capacity:2 ~dir m in
      Domain_pool.with_pool ~domains (fun pool ->
          for round = 1 to 4 do
            let label = Printf.sprintf "%d domains, round %d" domains round in
            let reference = Catalog.estimate_batch_r seq_cat pairs in
            let results = Catalog.estimate_batch_r ~pool par_cat pairs in
            compare_results label reference results;
            check_same_stats label (Catalog.stats seq_cat)
              (Catalog.stats par_cat);
            Alcotest.(check int)
              (label ^ ": same clock")
              (Catalog.clock seq_cat) (Catalog.clock par_cat)
          done))
    domain_counts

(* A single-group batch routes through the plan-chunking path
   (Estimator.estimate_many ~pool) instead of per-group jobs. *)
let test_catalog_single_group_differential () =
  let dir = Lazy.force catalog_dir in
  let m = load_manifest dir in
  let k = key "ssplays" 0.0 in
  let doc = Registry.generate ~scale:0.02 Registry.Ssplays in
  let qs = patterns_with_duplicates ~wseed:9203 doc in
  let pairs = Array.map (fun q -> (k, q)) qs in
  let reference =
    Catalog.estimate_batch_r (Catalog.of_manifest ~dir m) pairs
  in
  List.iter
    (fun domains ->
      Domain_pool.with_pool ~domains (fun pool ->
          let results =
            Catalog.estimate_batch_r ~pool (Catalog.of_manifest ~dir m) pairs
          in
          compare_results (Printf.sprintf "%d domains" domains) reference
            results))
    domain_counts

(* ------------------------------------------------------------------ *)
(* Chaos differential: same fault schedule, sequential vs parallel.    *)

(* The fault injector's PRNG draws happen during loads, and parallel
   batches load in the sequential order — so two catalogs with
   identically seeded injectors must produce identical results, errors
   and stats whether or not a pool is used. *)
let test_chaos_differential () =
  let dir = Lazy.force catalog_dir in
  let m = load_manifest dir in
  let pairs = routed_pairs () in
  let make_cat seed rate =
    let io =
      Fault.io (Fault.create (Fault.uniform ~seed ~rate)) Fault.Io.default
    in
    Catalog.of_manifest ~resident_capacity:2 ~io ~dir m
  in
  List.iter
    (fun domains ->
      List.iter
        (fun seed ->
          List.iter
            (fun rate ->
              let seq_cat = make_cat seed rate in
              let par_cat = make_cat seed rate in
              Domain_pool.with_pool ~domains (fun pool ->
                  for round = 1 to 4 do
                    let label =
                      Printf.sprintf
                        "%d domains, fault seed %d, rate %g, round %d" domains
                        seed rate round
                    in
                    let reference = Catalog.estimate_batch_r seq_cat pairs in
                    let results =
                      Catalog.estimate_batch_r ~pool par_cat pairs
                    in
                    compare_results label reference results;
                    check_same_stats label (Catalog.stats seq_cat)
                      (Catalog.stats par_cat)
                  done))
            fault_rates)
        fault_seeds)
    domain_counts

(* ------------------------------------------------------------------ *)
(* Pipeline twins: blocking loads vs loader-pool fan-out.              *)

(* Injected per-key loader latency makes the overlap real: with a
   concurrent loader pool the summary loads genuinely run ahead of
   their acquire turn on other domains, yet results, typed errors,
   acquire-side stats and the logical clock must stay bit-identical to
   the blocking twin — including under mid-batch eviction (three keys
   against resident capacity 2, so residency flips round after
   round). *)
let test_pipeline_latency_differential () =
  let keys = [ key "ssplays" 0.0; key "ssplays" 2.0; key "dblp" 0.0 ] in
  (* prefill the summary fixture: a concurrent loader must be a pure
     reader of shared state *)
  List.iter (fun k -> ignore (summary_for k)) keys;
  let loader (k : Catalog.key) =
    Unix.sleepf (0.001 *. (1.0 +. k.Catalog.variance));
    summary_for k
  in
  let pairs = routed_pairs () in
  let make () = Catalog.create ~resident_capacity:2 ~loader () in
  List.iter
    (fun load_domains ->
      let seq_cat = make () in
      let pipe_cat = make () in
      Domain_pool.with_pool ~domains:load_domains (fun lp ->
          let loads = Loader_pool.over lp in
          for round = 1 to 4 do
            let label =
              Printf.sprintf "%d load domains, round %d" load_domains round
            in
            let reference = Catalog.estimate_batch_r seq_cat pairs in
            let results = Catalog.estimate_batch_r ~loads pipe_cat pairs in
            compare_results label reference results;
            check_same_stats label (Catalog.stats seq_cat)
              (Catalog.stats pipe_cat);
            Alcotest.(check int)
              (label ^ ": same clock")
              (Catalog.clock seq_cat) (Catalog.clock pipe_cat)
          done))
    load_domain_counts

(* Load fan-out and execute fan-out composed: loads overlap each other
   while acquired groups execute across a second pool. *)
let test_pipeline_with_execute_pool_differential () =
  let keys = [ key "ssplays" 0.0; key "ssplays" 2.0; key "dblp" 0.0 ] in
  List.iter (fun k -> ignore (summary_for k)) keys;
  let loader (k : Catalog.key) =
    Unix.sleepf (0.001 *. (1.0 +. k.Catalog.variance));
    summary_for k
  in
  let pairs = routed_pairs () in
  let make () = Catalog.create ~resident_capacity:2 ~loader () in
  List.iter
    (fun load_domains ->
      let seq_cat = make () in
      let pipe_cat = make () in
      Domain_pool.with_pool ~domains:load_domains (fun lp ->
          Domain_pool.with_pool ~domains:4 (fun pool ->
              let loads = Loader_pool.over lp in
              for round = 1 to 4 do
                let label =
                  Printf.sprintf
                    "%d load domains + 4 execute domains, round %d"
                    load_domains round
                in
                let reference = Catalog.estimate_batch_r seq_cat pairs in
                let results =
                  Catalog.estimate_batch_r ~pool ~loads pipe_cat pairs
                in
                compare_results label reference results;
                check_same_stats label (Catalog.stats seq_cat)
                  (Catalog.stats pipe_cat);
                Alcotest.(check int)
                  (label ^ ": same clock")
                  (Catalog.clock seq_cat) (Catalog.clock pipe_cat)
              done)))
    load_domain_counts

(* Chaos twins through the pipeline: the keyed fault injector's
   schedule depends only on (seed, path, per-path attempt), so a
   keyed-injector catalog served through a concurrent loader pool must
   match a keyed-injector catalog served blocking — same injected
   faults, same retries, same quarantine transitions, same degraded
   serves, at every load-domain count. *)
let test_pipeline_chaos_keyed_differential () =
  let dir = Lazy.force catalog_dir in
  let m = load_manifest dir in
  let pairs = routed_pairs () in
  let make_cat seed rate =
    let io =
      Fault.io (Fault.create_keyed (Fault.uniform ~seed ~rate)) Fault.Io.default
    in
    Catalog.of_manifest ~resident_capacity:2 ~io ~dir m
  in
  List.iter
    (fun load_domains ->
      List.iter
        (fun seed ->
          List.iter
            (fun rate ->
              let seq_cat = make_cat seed rate in
              let pipe_cat = make_cat seed rate in
              Domain_pool.with_pool ~domains:load_domains (fun lp ->
                  let loads = Loader_pool.over lp in
                  for round = 1 to 4 do
                    let label =
                      Printf.sprintf
                        "%d load domains, keyed fault seed %d, rate %g, \
                         round %d"
                        load_domains seed rate round
                    in
                    let reference = Catalog.estimate_batch_r seq_cat pairs in
                    let results =
                      Catalog.estimate_batch_r ~loads pipe_cat pairs
                    in
                    compare_results label reference results;
                    check_same_stats label (Catalog.stats seq_cat)
                      (Catalog.stats pipe_cat);
                    Alcotest.(check int)
                      (label ^ ": same clock")
                      (Catalog.clock seq_cat) (Catalog.clock pipe_cat)
                  done))
            fault_rates)
        fault_seeds)
    load_domain_counts

(* A size-1 loader pool must degrade to exactly the blocking schedule:
   loads run at their acquire turn, in order — so even the shared
   order-sensitive *stream* injector stays bit-identical (the anchor
   that makes --load-domains 1 always safe, whatever the loader). *)
let test_pipeline_stream_injector_size1 () =
  let dir = Lazy.force catalog_dir in
  let m = load_manifest dir in
  let pairs = routed_pairs () in
  let make_cat seed rate =
    let io =
      Fault.io (Fault.create (Fault.uniform ~seed ~rate)) Fault.Io.default
    in
    Catalog.of_manifest ~resident_capacity:2 ~io ~dir m
  in
  List.iter
    (fun seed ->
      List.iter
        (fun rate ->
          let seq_cat = make_cat seed rate in
          let pipe_cat = make_cat seed rate in
          Domain_pool.with_pool ~domains:1 (fun lp ->
              let loads = Loader_pool.over lp in
              Alcotest.(check bool)
                "a size-1 loader pool is not concurrent" false
                (Loader_pool.concurrent loads);
              for round = 1 to 4 do
                let label =
                  Printf.sprintf
                    "1 load domain, stream fault seed %d, rate %g, round %d"
                    seed rate round
                in
                let reference = Catalog.estimate_batch_r seq_cat pairs in
                let results = Catalog.estimate_batch_r ~loads pipe_cat pairs in
                compare_results label reference results;
                check_same_stats label (Catalog.stats seq_cat)
                  (Catalog.stats pipe_cat)
              done))
        fault_rates)
    fault_seeds

(* ------------------------------------------------------------------ *)
(* Domain pool mechanics the contract rests on.                        *)

let test_pool_chunking_deterministic () =
  (* parallel_chunks covers [0, n) exactly once, with the same
     partition for every run at a fixed (size, n) *)
  List.iter
    (fun domains ->
      Domain_pool.with_pool ~domains (fun pool ->
          List.iter
            (fun n ->
              let seen = Array.make n 0 in
              Domain_pool.parallel_chunks pool ~n (fun ~chunk:_ ~lo ~hi ->
                  for i = lo to hi - 1 do
                    seen.(i) <- seen.(i) + 1
                  done);
              Array.iteri
                (fun i c ->
                  Alcotest.(check int)
                    (Printf.sprintf "%d domains, n=%d: slot %d covered once"
                       domains n i)
                    1 c)
                seen)
            [ 1; 2; 3; 7; 64; 1000 ]))
    domain_counts

let test_pool_exception_propagation () =
  Domain_pool.with_pool ~domains:4 (fun pool ->
      let completed = Atomic.make 0 in
      let jobs =
        Array.init 16 (fun i () ->
            if i = 5 then failwith "job five exploded"
            else ignore (Atomic.fetch_and_add completed 1))
      in
      (match Domain_pool.run_all pool jobs with
      | () -> Alcotest.fail "exception was swallowed"
      | exception Failure msg ->
          Alcotest.(check string) "the job's exception surfaces"
            "job five exploded" msg);
      (* every other job still ran to completion before the re-raise *)
      Alcotest.(check int) "no job abandoned" 15 (Atomic.get completed);
      (* the pool survives a failed run_all *)
      let ok = Atomic.make 0 in
      Domain_pool.run_all pool
        (Array.init 8 (fun _ () -> ignore (Atomic.fetch_and_add ok 1)));
      Alcotest.(check int) "pool reusable after an exception" 8 (Atomic.get ok))

let () =
  Alcotest.run "parallel_differential"
    [
      ( "estimator",
        [
          Alcotest.test_case "estimate_many pool vs sequential" `Quick
            test_estimate_many_differential;
          Alcotest.test_case "try_estimate_many pool vs sequential" `Quick
            test_try_estimate_many_differential;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "routed batches with mid-batch eviction" `Quick
            test_catalog_batch_differential;
          Alcotest.test_case "single-group batches" `Quick
            test_catalog_single_group_differential;
          Alcotest.test_case "chaos: injected faults" `Quick
            test_chaos_differential;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "loader latency, loads 1/2/4 vs blocking" `Quick
            test_pipeline_latency_differential;
          Alcotest.test_case "load pool composed with execute pool" `Quick
            test_pipeline_with_execute_pool_differential;
          Alcotest.test_case "chaos: keyed faults through the pipeline" `Quick
            test_pipeline_chaos_keyed_differential;
          Alcotest.test_case "size-1 loader pool equals blocking (stream)"
            `Quick test_pipeline_stream_injector_size1;
        ] );
      ( "pool",
        [
          Alcotest.test_case "deterministic chunking" `Quick
            test_pool_chunking_deterministic;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagation;
        ] );
    ]
