(* Randomized differential testing of the estimator against the exact
   Truth oracle.

   The Workload generator (driven by the splitmix64 PRNG with fixed
   seeds) produces hundreds of patterns per synthetic dataset, each
   carrying its exact selectivity.  For every generated pattern we
   assert the estimator's global invariants — estimates are finite and
   non-negative — and for the class Theorem 4.1 covers (simple
   child/descendant-only queries over an exact synopsis, p_variance=0)
   we assert the estimate never undershoots the oracle, and equals it
   exactly on documents that satisfy the theorem's premise: no tag
   occurs twice on one root-to-leaf path.  SSPlays and DBLP are
   recursion-free; XMark's parlist/listitem recursion makes the path
   join an upper bound there (an element's path id cannot distinguish
   tags above it from the same tags below it on the same path).

   The same checks also run against a synopsis that went through a
   save/load round-trip, so the differential suite hardens the codec
   as well as the estimator. *)

module Doc = Xpest_xml.Doc
module Pattern = Xpest_xpath.Pattern
module Truth = Xpest_xpath.Truth
module Summary = Xpest_synopsis.Summary
module Estimator = Xpest_estimator.Estimator
module Workload = Xpest_workload.Workload
module Registry = Xpest_datasets.Registry

let min_cases = 500

(* Fixed per-dataset seeds: document generation uses the registry's
   per-dataset defaults; the workload seed is pinned here. *)
let profiles =
  [
    (Registry.Ssplays, 0.1, 7101);
    (Registry.Dblp, 0.05, 7102);
    (Registry.Xmark, 0.05, 7103);
  ]

let workload_items ~wseed doc =
  let config =
    {
      Workload.default_config with
      seed = wseed;
      num_simple = 2500;
      num_branch = 2500;
    }
  in
  let w = Workload.generate ~config doc in
  List.concat
    [
      w.Workload.simple;
      w.Workload.branch;
      w.Workload.order_branch_target;
      w.Workload.order_trunk_target;
    ]

let is_simple (q : Pattern.t) =
  match Pattern.shape q with
  | Pattern.Simple _ -> true
  | Pattern.Branch _ | Pattern.Ordered _ -> false

(* Theorem 4.1's premise: no tag occurs twice on one root-to-leaf
   path. *)
let recursion_free summary =
  List.for_all
    (fun path ->
      let sorted = List.sort String.compare path in
      let rec no_dup = function
        | a :: (b :: _ as tl) -> (not (String.equal a b)) && no_dup tl
        | [ _ ] | [] -> true
      in
      no_dup sorted)
    (Xpest_encoding.Encoding_table.paths (Summary.encoding_table summary))

let check_invariants ~label ~exact est items =
  let simple_checked = ref 0 in
  List.iter
    (fun (it : Workload.item) ->
      let qs = Pattern.to_string it.pattern in
      let estimate = Estimator.estimate est it.pattern in
      if not (Float.is_finite estimate) then
        Alcotest.failf "%s: %s: estimate %g is not finite" label qs estimate;
      if estimate < 0.0 then
        Alcotest.failf "%s: %s: estimate %g is negative" label qs estimate;
      if is_simple it.pattern then begin
        incr simple_checked;
        let actual = Float.of_int it.Workload.actual in
        let tolerance = 1e-6 *. Float.max 1.0 actual in
        (* The v=0 path join never loses a true match: a matching
           element's path id always survives, so simple estimates are
           lower-bounded by the oracle... *)
        if estimate < actual -. tolerance then
          Alcotest.failf "%s: %s: simple query estimate %g < oracle %d" label
            qs estimate it.Workload.actual;
        (* ...and Theorem 4.1 makes them exact on recursion-free
           documents. *)
        if exact && Float.abs (estimate -. actual) > tolerance then
          Alcotest.failf "%s: %s: simple query estimate %g <> oracle %d" label
            qs estimate it.Workload.actual
      end)
    items;
  !simple_checked

let test_dataset (name, scale, wseed) () =
  let doc = Registry.generate ~scale name in
  let items = workload_items ~wseed doc in
  let n = List.length items in
  if n < min_cases then
    Alcotest.failf "only %d generated cases for %s (need >= %d)" n
      (Registry.to_string name) min_cases;
  let summary = Summary.build ~p_variance:0.0 ~o_variance:0.0 doc in
  let exact = recursion_free summary in
  let checked =
    check_invariants ~label:"in-memory" ~exact (Estimator.create summary) items
  in
  Alcotest.(check bool) "some simple queries were checked against the oracle"
    true (checked > 0);
  (* The loaded synopsis must satisfy the same invariants, including
     Theorem 4.1 exactness. *)
  let loaded = Summary.decode (Summary.encode summary) in
  ignore
    (check_invariants ~label:"loaded" ~exact (Estimator.create loaded) items)

let test_deterministic () =
  (* Same seeds, same workload: the suite is reproducible in CI. *)
  let doc = Registry.generate ~scale:0.05 Registry.Xmark in
  let p0 =
    List.map
      (fun (it : Workload.item) -> Pattern.to_string it.pattern)
      (workload_items ~wseed:7103 doc)
  in
  let p1 =
    List.map
      (fun (it : Workload.item) -> Pattern.to_string it.pattern)
      (workload_items ~wseed:7103 doc)
  in
  Alcotest.(check (list string)) "identical workloads" p0 p1

let () =
  Alcotest.run "differential"
    [
      ( "datasets",
        List.map
          (fun ((name, _, _) as profile) ->
            Alcotest.test_case (Registry.to_string name) `Quick
              (test_dataset profile))
          profiles );
      ( "reproducibility",
        [ Alcotest.test_case "fixed seeds" `Quick test_deterministic ] );
    ]
