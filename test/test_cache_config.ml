(* Cache_config.for_dataset resolution order: a live BENCH_engine.json
   wins when it carries all four cache peaks for the dataset; anything
   less — missing file, malformed JSON, truncated block — falls back
   to the built-in per-dataset table, and unknown datasets to the
   shared default.  A half-parsed file must never produce half-tuned
   capacities. *)

module Cache_config = Xpest_plan.Cache_config
module Plan_cache = Xpest_plan.Plan_cache

let tmpfile contents =
  let path = Filename.temp_file "xpest_cache_config" ".json" in
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc;
  path

let caps (c : Cache_config.t) =
  [ c.Cache_config.plan; c.Cache_config.rel; c.Cache_config.chain; c.Cache_config.run ]

let check_caps msg expected cfg =
  Alcotest.(check (list int)) msg expected (caps cfg)

(* a minimal bench block shaped like the real emitter's output *)
let bench_json ?(dataset = "ssplays") ?(plan = 100) ?(rel = 200) ?(chain = 300)
    ?(run = 400) () =
  Printf.sprintf
    {|{ "schema": "xpest-bench-engine/5",
  "engine": [
    { "dataset": %S, "scale": 0.1,
      "caches": {
        "plan": { "capacity": 4096, "peak": %d, "evictions": 0 },
        "rel": { "capacity": 4096, "peak": %d, "evictions": 0 },
        "chain": { "capacity": 4096, "peak": %d, "evictions": 0 },
        "run": { "capacity": 4096, "peak": %d, "evictions": 0 } } },
    { "dataset": "dblp", "scale": 0.1,
      "caches": {
        "plan": { "capacity": 4096, "peak": 9999, "evictions": 0 } } } ] }|}
    dataset plan rel chain run

let builtin_ssplays = Cache_config.for_dataset "ssplays"

let test_missing_file () =
  let cfg =
    Cache_config.for_dataset ~bench_json:"/nonexistent/BENCH_engine.json"
      "ssplays"
  in
  check_caps "missing file = builtin" (caps builtin_ssplays) cfg;
  Alcotest.(check bool) "segmented untouched" false cfg.Cache_config.segmented;
  Alcotest.(check bool)
    "no byte budget" true
    (cfg.Cache_config.resident_bytes = None)

let test_malformed_file () =
  List.iter
    (fun contents ->
      let path = tmpfile contents in
      let cfg = Cache_config.for_dataset ~bench_json:path "ssplays" in
      Sys.remove path;
      check_caps
        (Printf.sprintf "malformed (%S...) = builtin"
           (String.sub contents 0 (min 20 (String.length contents))))
        (caps builtin_ssplays) cfg)
    [
      "";
      "not json at all";
      {|{ "schema": "xpest-bench-engine/5", "engine": [] }|};
      (* dataset present but a peak is missing: all-or-nothing *)
      {|{ "engine": [ { "dataset": "ssplays",
           "caches": { "plan": { "peak": 10 }, "rel": { "peak": 10 },
                       "chain": { "peak": 10 } } } ] }|};
      (* non-numeric peak *)
      {|{ "engine": [ { "dataset": "ssplays",
           "caches": { "plan": { "peak": ten }, "rel": { "peak": 10 },
                       "chain": { "peak": 10 }, "run": { "peak": 10 } } } ] }|};
    ]

let test_derived_capacities () =
  let path = tmpfile (bench_json ~plan:100 ~rel:200 ~chain:300 ~run:2000 ()) in
  let cfg = Cache_config.for_dataset ~bench_json:path "ssplays" in
  Sys.remove path;
  (* next power of two above twice the peak, floored at 512 *)
  check_caps "derived from live peaks" [ 512; 512; 1024; 4096 ] cfg

let test_other_dataset_blocks_isolated () =
  (* the dblp block in the fixture lacks rel/chain/run peaks: dblp
     falls back to builtin even though ssplays parses *)
  let path = tmpfile (bench_json ()) in
  let from_bench = Cache_config.for_dataset ~bench_json:path "dblp" in
  Sys.remove path;
  check_caps "dblp = builtin despite live file"
    (caps (Cache_config.for_dataset "dblp"))
    from_bench

let test_unknown_dataset () =
  let cfg = Cache_config.for_dataset "no-such-dataset" in
  check_caps "unknown = default" (caps Cache_config.default) cfg;
  Alcotest.(check int) "default is the shared plan-cache capacity"
    Plan_cache.default_capacity cfg.Cache_config.plan

let () =
  Alcotest.run "cache_config"
    [
      ( "for_dataset",
        [
          Alcotest.test_case "missing bench file" `Quick test_missing_file;
          Alcotest.test_case "malformed bench file" `Quick test_malformed_file;
          Alcotest.test_case "derived capacities" `Quick
            test_derived_capacities;
          Alcotest.test_case "per-dataset isolation" `Quick
            test_other_dataset_blocks_isolated;
          Alcotest.test_case "unknown dataset" `Quick test_unknown_dataset;
        ] );
    ]
