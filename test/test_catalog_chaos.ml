(* Chaos tests for the catalog's fault-tolerance layer: routed batches
   under injected storage faults never raise, keep per-query isolation
   and input order, and every Ok float is bit-identical to the
   fault-free run; the quarantine/backoff state machine is verified
   step by deterministic step on the logical clock. *)

module Counters = Xpest_util.Counters
module Fault = Xpest_util.Fault
module E = Xpest_util.Xpest_error
module Pattern = Xpest_xpath.Pattern
module Summary = Xpest_synopsis.Summary
module Manifest = Xpest_synopsis.Manifest
module Registry = Xpest_datasets.Registry
module Catalog = Xpest_catalog.Catalog

let seeds = [ 11; 23; 47 ]
let rates = [ 0.01; 0.1 ]

let key d v = { Catalog.dataset = d; variance = v }

let summaries : (string * float, Summary.t) Hashtbl.t = Hashtbl.create 8

let summary_for (k : Catalog.key) =
  match Hashtbl.find_opt summaries (k.Catalog.dataset, k.Catalog.variance) with
  | Some s -> s
  | None ->
      let name =
        match Registry.of_string k.Catalog.dataset with
        | Some n -> n
        | None -> Alcotest.failf "unknown dataset %s" k.Catalog.dataset
      in
      let doc = Registry.generate ~scale:0.02 name in
      let s =
        Summary.build ~p_variance:k.Catalog.variance
          ~o_variance:k.Catalog.variance doc
      in
      Hashtbl.add summaries (k.Catalog.dataset, k.Catalog.variance) s;
      s

(* A real on-disk catalog the injected faults can damage in flight. *)
let catalog_dir =
  lazy
    (let dir =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "xpest_chaos_test_%d" (Unix.getpid ()))
     in
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
     let m =
       List.fold_left
         (fun m k -> Catalog.save_entry ~dir m k (summary_for k))
         Manifest.empty
         [ key "ssplays" 0.0; key "ssplays" 2.0; key "dblp" 0.0 ]
     in
     Manifest.save m (Filename.concat dir Catalog.manifest_filename);
     dir)

let routed_pairs () =
  let k1 = key "ssplays" 0.0
  and k2 = key "ssplays" 2.0
  and k3 = key "dblp" 0.0 in
  let p = Pattern.of_string in
  [|
    (k1, p "//SPEECH/LINE");
    (k3, p "//inproceedings/title");
    (k2, p "//ACT[/{SCENE}]");
    (k1, p "//PLAY//{SPEECH}");
    (k2, p "//SPEECH/LINE");
    (k3, p "//article/{author}");
    (k1, p "//SPEECH/LINE");
    (k3, p "//inproceedings/title");
  |]

let load_manifest dir =
  match Manifest.load_typed (Filename.concat dir Catalog.manifest_filename) with
  | Ok m -> m
  | Error e -> Alcotest.failf "manifest load failed: %s" (E.to_string e)

(* ------------------------------------------------------------------ *)
(* Routed batches under injection.                                     *)

let test_chaos_batches () =
  let dir = Lazy.force catalog_dir in
  let m = load_manifest dir in
  let pairs = routed_pairs () in
  (* fault-free reference floats *)
  let reference =
    let cat = Catalog.of_manifest ~dir m in
    Array.map
      (function
        | Ok v -> v
        | Error e -> Alcotest.failf "fault-free run failed: %s" (E.to_string e))
      (Catalog.estimate_batch_r cat pairs)
  in
  List.iter
    (fun seed ->
      List.iter
        (fun rate ->
          let io =
            Fault.io (Fault.create (Fault.uniform ~seed ~rate)) Fault.Io.default
          in
          (* resident capacity 2 over 3 keys: every batch reloads, so
             the fault surface stays exercised round after round *)
          let cat = Catalog.of_manifest ~resident_capacity:2 ~io ~dir m in
          for round = 1 to 5 do
            let results = Catalog.estimate_batch_r cat pairs in
            Alcotest.(check int)
              (Printf.sprintf "seed %d rate %g round %d: in input order" seed
                 rate round)
              (Array.length pairs) (Array.length results);
            Array.iteri
              (fun i -> function
                | Ok v ->
                    Alcotest.(check bool)
                      (Printf.sprintf
                         "seed %d rate %g round %d query %d: Ok is \
                          bit-identical to fault-free"
                         seed rate round i)
                      true
                      (Int64.equal (Int64.bits_of_float v)
                         (Int64.bits_of_float reference.(i)))
                | Error (E.Io_failure _ | E.Corrupt _ | E.Quarantined _) -> ()
                | Error e ->
                    Alcotest.failf
                      "seed %d rate %g round %d query %d: unexpected error \
                       class %s"
                      seed rate round i (E.to_string e))
              results
          done)
        rates)
    seeds

(* At a 10% fault rate with retries, some queries must still succeed
   over enough rounds — degraded, not dead. *)
let test_chaos_service_survives () =
  let dir = Lazy.force catalog_dir in
  let m = load_manifest dir in
  let pairs = routed_pairs () in
  let io =
    Fault.io (Fault.create (Fault.uniform ~seed:23 ~rate:0.1)) Fault.Io.default
  in
  let cat = Catalog.of_manifest ~resident_capacity:2 ~io ~dir m in
  let ok = ref 0 and total = ref 0 in
  for _ = 1 to 10 do
    Array.iter
      (function Ok _ -> incr ok | Error _ -> ())
      (Catalog.estimate_batch_r cat pairs);
    total := !total + Array.length pairs
  done;
  Alcotest.(check bool)
    (Printf.sprintf "most queries succeed at 10%% faults (%d/%d)" !ok !total)
    true
    (!ok * 2 > !total)

(* ------------------------------------------------------------------ *)
(* Quarantine / backoff state machine, step by step.                   *)

let test_quarantine_backoff () =
  let k = key "ssplays" 0.0 in
  let q = Pattern.of_string "//SPEECH" in
  let healthy = ref false in
  let loader_calls = ref 0 in
  let loader k =
    incr loader_calls;
    if !healthy then Ok (summary_for k)
    else Error (E.Io_failure { path = "chaos"; reason = "injected" })
  in
  let resilience =
    {
      Catalog.default_resilience with
      max_retries = 0;
      failure_threshold = 3;
      backoff_base = 2;
      backoff_max = 8;
    }
  in
  let cat = Catalog.create_r ~resilience ~loader () in
  let attempt expect_called expect_kind label =
    let before = !loader_calls in
    let r = Catalog.estimate_r cat k q in
    Alcotest.(check bool)
      (label ^ ": loader touched iff expected")
      expect_called
      (!loader_calls > before);
    match (r, expect_kind) with
    | Ok _, `Ok -> ()
    | Error e, `Kind kind ->
        Alcotest.(check string) (label ^ ": error kind") kind (E.kind e)
    | Ok _, `Kind kind -> Alcotest.failf "%s: expected %s, got Ok" label kind
    | Error e, `Ok ->
        Alcotest.failf "%s: expected Ok, got %s" label (E.to_string e)
  in
  let state label expected =
    match Catalog.health cat with
    | [ h ] ->
        let got =
          match h.Catalog.h_state with
          | Catalog.Healthy -> "healthy"
          | Catalog.Quarantined { until } -> Printf.sprintf "quarantined:%d" until
          | Catalog.Degraded -> "degraded"
        in
        Alcotest.(check string) (label ^ ": health state") expected got
    | hs -> Alcotest.failf "%s: expected one tracked key, got %d" label
              (List.length hs)
  in
  (* clock 1..3: three straight failures, third one quarantines for
     backoff_base = 2 ticks (until clock 3 + 2 = 5) *)
  attempt true (`Kind "io-failure") "attempt 1";
  attempt true (`Kind "io-failure") "attempt 2";
  attempt true (`Kind "io-failure") "attempt 3";
  state "after threshold" "quarantined:5";
  (* clock 4: inside quarantine — refused with NO loader I/O *)
  attempt false (`Kind "quarantined") "attempt 4 (benched)";
  (* clock 5: quarantine expired — one probe, still failing, so it
     re-quarantines with doubled backoff (until 5 + 4 = 9) *)
  attempt true (`Kind "io-failure") "attempt 5 (probe)";
  state "after failed probe" "quarantined:9";
  (* clock 6..8: benched again, no I/O *)
  attempt false (`Kind "quarantined") "attempt 6 (benched)";
  attempt false (`Kind "quarantined") "attempt 7 (benched)";
  attempt false (`Kind "quarantined") "attempt 8 (benched)";
  (* the fault clears; clock 9 probes and recovers *)
  healthy := true;
  attempt true `Ok "attempt 9 (recovery)";
  state "after recovery" "healthy";
  Alcotest.(check int) "loader calls: 3 + probe + recovery" 5 !loader_calls;
  let st = Catalog.stats cat in
  Alcotest.(check int) "failures" 4 st.Catalog.failures;
  Alcotest.(check int) "quarantines" 2 st.Catalog.quarantines;
  (* healthy again: next attempt is a resident hit, no loader call *)
  attempt false `Ok "attempt 10 (resident)";
  Alcotest.(check int) "clock ticked once per attempt" 10 (Catalog.clock cat)

let test_retry_transient () =
  let k = key "ssplays" 0.0 in
  let q = Pattern.of_string "//SPEECH" in
  let failures_left = ref 1 in
  let loader_calls = ref 0 in
  let loader k =
    incr loader_calls;
    if !failures_left > 0 then begin
      decr failures_left;
      Error (E.Io_failure { path = "chaos"; reason = "blip" })
    end
    else Ok (summary_for k)
  in
  let cat = Catalog.create_r ~loader () in
  (match Catalog.estimate_r cat k q with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "transient blip not absorbed by retry: %s" (E.to_string e));
  Alcotest.(check int) "loader called twice (1 failure + 1 retry)" 2
    !loader_calls;
  let st = Catalog.stats cat in
  Alcotest.(check int) "one retry recorded" 1 st.Catalog.retries;
  Alcotest.(check int) "no failed attempts" 0 st.Catalog.failures;
  (* a permanent error burns no retries *)
  let cat2 =
    Catalog.create_r
      ~loader:(fun k -> Error (E.Unknown_key (Catalog.key_to_string k)))
      ()
  in
  (match Catalog.estimate_r cat2 k q with
  | Error (E.Unknown_key _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "unknown key not reported");
  Alcotest.(check int) "no retries on permanent errors" 0
    (Catalog.stats cat2).Catalog.retries

let test_degraded_serving () =
  let k = key "ssplays" 0.0 in
  let q = Pattern.of_string "//SPEECH/LINE" in
  let verdict = ref (Ok ()) in
  let make stale_if_error =
    Catalog.create_r
      ~resilience:
        {
          Catalog.default_resilience with
          verify_resident = true;
          stale_if_error;
        }
      ~verify:(fun _ -> !verdict)
      ~loader:(fun k -> Ok (summary_for k))
      ()
  in
  (* stale-if-error on: failed re-verification serves the resident
     copy, bit-identical, and marks the key Degraded *)
  verdict := Ok ();
  let cat = make true in
  let v0 =
    match Catalog.estimate_r cat k q with
    | Ok v -> v
    | Error e -> Alcotest.failf "warm-up failed: %s" (E.to_string e)
  in
  verdict := Error (E.Corrupt { path = "x"; section = "body"; reason = "flip" });
  (match Catalog.estimate_r cat k q with
  | Ok v ->
      Alcotest.(check bool) "degraded hit serves the same float" true
        (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float v0))
  | Error e -> Alcotest.failf "stale_if_error did not serve: %s" (E.to_string e));
  Alcotest.(check int) "degraded hit counted" 1
    (Catalog.stats cat).Catalog.degraded_hits;
  (match Catalog.health cat with
  | [ h ] ->
      Alcotest.(check bool) "state is Degraded" true
        (h.Catalog.h_state = Catalog.Degraded)
  | hs -> Alcotest.failf "expected one tracked key, got %d" (List.length hs));
  (* verification healing clears the degraded mark *)
  verdict := Ok ();
  (match Catalog.estimate_r cat k q with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "healed hit failed: %s" (E.to_string e));
  (match Catalog.health cat with
  | [ h ] ->
      Alcotest.(check bool) "healed back to Healthy" true
        (h.Catalog.h_state = Catalog.Healthy)
  | _ -> Alcotest.fail "tracking lost");
  (* stale-if-error off: the same failure drops the resident and
     surfaces the error instead *)
  verdict := Ok ();
  let cat2 = make false in
  ignore (Catalog.estimate_r cat2 k q);
  verdict := Error (E.Corrupt { path = "x"; section = "body"; reason = "flip" });
  (match Catalog.estimate_r cat2 k q with
  | Error (E.Corrupt _) -> ()
  | Ok _ -> Alcotest.fail "stale_if_error=false still served"
  | Error e -> Alcotest.failf "wrong error class: %s" (E.to_string e));
  (* the distrusted resident is gone: healing the verifier makes the
     next attempt reload from the loader *)
  verdict := Ok ();
  (match Catalog.estimate_r cat2 k q with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "reload after drop failed: %s" (E.to_string e));
  Alcotest.(check int) "dropped resident was reloaded" 2
    (Catalog.stats cat2).Catalog.loads

let test_per_query_isolation () =
  let good = key "ssplays" 0.0 and bad = key "dblp" 0.0 in
  let loader k =
    if k = bad then Error (E.Io_failure { path = "chaos"; reason = "down" })
    else Ok (summary_for k)
  in
  let cat = Catalog.create_r ~loader () in
  let p = Pattern.of_string in
  let pairs =
    [|
      (good, p "//SPEECH/LINE");
      (bad, p "//inproceedings/title");
      (good, p "//PLAY//{SPEECH}");
      (bad, p "//article");
    |]
  in
  let reference =
    let cat = Catalog.create_r ~loader:(fun k -> Ok (summary_for k)) () in
    Catalog.estimate_batch_r cat [| pairs.(0); pairs.(2) |]
  in
  let results = Catalog.estimate_batch_r cat pairs in
  (match (results.(0), reference.(0)) with
  | Ok a, Ok b ->
      Alcotest.(check bool) "query 0 unaffected by the poisoned key" true
        (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
  | _ -> Alcotest.fail "query 0 should succeed");
  (match (results.(2), reference.(1)) with
  | Ok a, Ok b ->
      Alcotest.(check bool) "query 2 unaffected by the poisoned key" true
        (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
  | _ -> Alcotest.fail "query 2 should succeed");
  (match results.(1) with
  | Error (E.Io_failure _) -> ()
  | _ -> Alcotest.fail "query 1 should carry the poisoned key's error");
  (match results.(3) with
  | Error (E.Io_failure _) -> ()
  | _ -> Alcotest.fail "query 3 should carry the poisoned key's error");
  (* the raising wrapper reports the first failure as Invalid_argument
     (the legacy contract) *)
  match Catalog.estimate_batch cat pairs with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "estimate_batch should raise on a failed key"

(* A loader that *raises* mid-flight — not returns Error — now runs on
   a loader-pool domain.  The raise must surface as exactly the typed
   error the blocking path produces (Catalog.create classifies escaped
   exceptions before the pool ever sees them), attributed to the
   raising key's queries only: healthy keys loaded concurrently with
   the raising one stay Ok and bit-identical, with identical stats. *)
let test_raising_loader_through_pipeline () =
  let module Domain_pool = Xpest_util.Domain_pool in
  let module Loader_pool = Xpest_util.Loader_pool in
  let bad = key "ssplays" 2.0 in
  (* prefill: concurrent loaders must be pure readers of the fixture *)
  List.iter
    (fun k -> ignore (summary_for k))
    [ key "ssplays" 0.0; bad; key "dblp" 0.0 ];
  let loader k =
    Unix.sleepf 0.002;
    if k = bad then
      raise (Sys_error "injected: summary store unreachable mid-flight")
    else summary_for k
  in
  let pairs = routed_pairs () in
  let make () = Catalog.create ~resident_capacity:2 ~loader () in
  let seq_cat = make () in
  let reference = Catalog.estimate_batch_r seq_cat pairs in
  List.iter
    (fun load_domains ->
      let pipe_cat = make () in
      Domain_pool.with_pool ~domains:load_domains (fun lp ->
          let loads = Loader_pool.over lp in
          let results = Catalog.estimate_batch_r ~loads pipe_cat pairs in
          Array.iteri
            (fun i r ->
              let label =
                Printf.sprintf "%d load domains, query %d" load_domains i
              in
              let k, _ = pairs.(i) in
              match (r, reference.(i)) with
              | Ok a, Ok b ->
                  Alcotest.(check bool)
                    (label ^ ": healthy key unaffected by the raising one")
                    true
                    (k <> bad
                    && Int64.equal (Int64.bits_of_float a)
                         (Int64.bits_of_float b))
              | Error (E.Io_failure _ as a), Error (E.Io_failure _ as b) ->
                  Alcotest.(check bool)
                    (label ^ ": raise landed on the raising key only")
                    true (k = bad);
                  Alcotest.(check string)
                    (label ^ ": same typed error as blocking")
                    (E.to_string b) (E.to_string a)
              | _ ->
                  Alcotest.failf "%s: outcome diverged from the blocking twin"
                    label)
            results;
          let a = Catalog.stats seq_cat and b = Catalog.stats pipe_cat in
          List.iter
            (fun (field, x, y) ->
              Alcotest.(check int)
                (Printf.sprintf "%d load domains: same %s" load_domains field)
                x y)
            [
              ("loads", a.Catalog.loads, b.Catalog.loads);
              ("failures", a.Catalog.failures, b.Catalog.failures);
              ("retries", a.Catalog.retries, b.Catalog.retries);
              ("quarantines", a.Catalog.quarantines, b.Catalog.quarantines);
            ]))
    [ 2; 4 ]

let () =
  Alcotest.run "catalog_chaos"
    [
      ( "chaos",
        [
          Alcotest.test_case "batches under injection" `Quick test_chaos_batches;
          Alcotest.test_case "service survives 10% faults" `Quick
            test_chaos_service_survives;
          Alcotest.test_case "raising loader through the pipeline" `Quick
            test_raising_loader_through_pipeline;
        ] );
      ( "state_machine",
        [
          Alcotest.test_case "quarantine + backoff" `Quick
            test_quarantine_backoff;
          Alcotest.test_case "transient retry" `Quick test_retry_transient;
          Alcotest.test_case "degraded serving" `Quick test_degraded_serving;
          Alcotest.test_case "per-query isolation" `Quick
            test_per_query_isolation;
        ] );
    ]
