(* Unit tests for the admission controller: deadline budgets, the
   per-batch load-queue bound, the loader circuit breaker's state
   machine, the planner's worst-case provability predicate, and the
   breaker's persistence snapshot.  Everything here is pure state
   machinery — no catalog, no I/O — so each transition is pinned
   exactly. *)

module Admission = Xpest_catalog.Admission
module E = Xpest_util.Xpest_error

let cfg ?deadline ?max_queued_loads ?breaker_threshold
    ?(breaker_saturation = 4) ?(load_cost = 8) ?(policy = Admission.Degrade)
    () =
  {
    Admission.deadline;
    max_queued_loads;
    breaker_threshold;
    breaker_saturation;
    load_cost;
    policy;
  }

let admit ?(label = "admitted") t ~clock ~key ~would_load =
  match Admission.decide t ~clock ~key ~would_load with
  | Admission.Admit { probe } -> probe
  | Admission.Shed e -> Alcotest.failf "%s: shed (%s)" label (E.to_string e)

let shed ?(label = "shed") t ~clock ~key ~would_load =
  match Admission.decide t ~clock ~key ~would_load with
  | Admission.Admit _ -> Alcotest.failf "%s: admitted" label
  | Admission.Shed e -> e

let breaker_state t ~clock = (Admission.breaker t ~clock).Admission.state

(* ------------------------------------------------------------------ *)
(* Activation and validation.                                          *)

let test_inactive_admits_everything () =
  let t = Admission.create Admission.unlimited in
  Alcotest.(check bool) "unlimited is inactive" false (Admission.active t);
  (* no batch_begin on purpose: an inactive controller must not even
     need the ledger *)
  for i = 0 to 99 do
    let probe =
      admit t ~clock:i ~key:"k" ~would_load:(i mod 2 = 0)
        ~label:(Printf.sprintf "query %d" i)
    in
    Alcotest.(check bool) "never a probe" false probe
  done;
  let s = Admission.stats t in
  Alcotest.(check int) "no sheds counted" 0 (Admission.total_sheds s)

let test_any_limit_activates () =
  let active c = Admission.active (Admission.create c) in
  Alcotest.(check bool) "deadline" true (active (cfg ~deadline:10 ()));
  Alcotest.(check bool) "queue bound" true (active (cfg ~max_queued_loads:1 ()));
  Alcotest.(check bool) "breaker" true (active (cfg ~breaker_threshold:3 ()))

let test_create_validates () =
  let raises c =
    match Admission.create c with
    | _ -> Alcotest.fail "malformed config accepted"
    | exception Invalid_argument _ -> ()
  in
  raises (cfg ~deadline:(-1) ());
  raises (cfg ~max_queued_loads:(-1) ());
  raises (cfg ~breaker_threshold:0 ());
  raises (cfg ~load_cost:0 ());
  raises (cfg ~breaker_saturation:0 ())

let test_policy_strings () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Admission.policy_to_string p ^ " round-trips")
        true
        (Admission.policy_of_string (Admission.policy_to_string p) = Some p))
    [ Admission.Reject; Admission.Degrade ];
  Alcotest.(check bool)
    "unknown policy rejected" true
    (Admission.policy_of_string "bogus" = None)

(* ------------------------------------------------------------------ *)
(* Deadline budget.                                                    *)

let test_deadline_budget_spending () =
  (* budget 20: load(8) + load(8) + hit(1)*4 = 20 exactly; the 21st
     tick is refused with the precise shortfall *)
  let t = Admission.create (cfg ~deadline:20 ()) in
  Admission.batch_begin t;
  ignore (admit t ~clock:0 ~key:"a" ~would_load:true);
  ignore (admit t ~clock:1 ~key:"b" ~would_load:true);
  for i = 0 to 3 do
    ignore
      (admit t ~clock:(2 + i) ~key:"a" ~would_load:false
         ~label:(Printf.sprintf "hit %d" i))
  done;
  (match shed t ~clock:6 ~key:"c" ~would_load:false with
  | E.Deadline_exceeded { key; needed; remaining } ->
      Alcotest.(check string) "shed key" "c" key;
      Alcotest.(check int) "needed" 1 needed;
      Alcotest.(check int) "remaining" 0 remaining
  | e -> Alcotest.failf "wrong error: %s" (E.to_string e));
  let s = Admission.stats t in
  Alcotest.(check int) "one deadline shed" 1 s.Admission.s_deadline_sheds

let test_deadline_shed_spends_nothing () =
  (* budget 10: a load (needs 8) fits once; the second load is shed
     but hits (cost 1) keep being admitted from the 2 remaining ticks *)
  let t = Admission.create (cfg ~deadline:10 ()) in
  Admission.batch_begin t;
  ignore (admit t ~clock:0 ~key:"a" ~would_load:true);
  (match shed t ~clock:1 ~key:"b" ~would_load:true with
  | E.Deadline_exceeded { needed; remaining; _ } ->
      Alcotest.(check int) "needed a load" 8 needed;
      Alcotest.(check int) "2 ticks left" 2 remaining
  | e -> Alcotest.failf "wrong error: %s" (E.to_string e));
  ignore (admit t ~clock:2 ~key:"a" ~would_load:false ~label:"hit after shed");
  ignore (admit t ~clock:3 ~key:"a" ~would_load:false ~label:"second hit");
  (* now the budget really is empty *)
  ignore (shed t ~clock:4 ~key:"a" ~would_load:false ~label:"exhausted")

let test_batch_begin_resets_budget () =
  let t = Admission.create (cfg ~deadline:8 ()) in
  Admission.batch_begin t;
  ignore (admit t ~clock:0 ~key:"a" ~would_load:true);
  ignore (shed t ~clock:1 ~key:"b" ~would_load:true ~label:"batch 1 exhausted");
  Admission.batch_end t ~clock:1;
  Admission.batch_begin t;
  ignore (admit t ~clock:2 ~key:"b" ~would_load:true ~label:"fresh budget")

(* ------------------------------------------------------------------ *)
(* Load-queue bound.                                                   *)

let test_queue_bound () =
  let t = Admission.create (cfg ~max_queued_loads:2 ()) in
  Admission.batch_begin t;
  ignore (admit t ~clock:0 ~key:"a" ~would_load:true);
  ignore (admit t ~clock:1 ~key:"b" ~would_load:true);
  (match shed t ~clock:2 ~key:"c" ~would_load:true with
  | E.Overloaded _ -> ()
  | e -> Alcotest.failf "wrong error: %s" (E.to_string e));
  (* hits never occupy the load queue *)
  ignore (admit t ~clock:3 ~key:"a" ~would_load:false ~label:"hit at bound");
  let s = Admission.stats t in
  Alcotest.(check int) "one overload shed" 1 s.Admission.s_overload_sheds;
  (* a new batch gets a fresh queue *)
  Admission.batch_end t ~clock:4;
  Admission.batch_begin t;
  ignore (admit t ~clock:5 ~key:"c" ~would_load:true ~label:"fresh queue")

let test_queue_bound_zero_is_resident_only () =
  let t = Admission.create (cfg ~max_queued_loads:0 ()) in
  Admission.batch_begin t;
  ignore (shed t ~clock:0 ~key:"a" ~would_load:true ~label:"no loads at all");
  ignore (admit t ~clock:1 ~key:"b" ~would_load:false ~label:"hits still serve")

(* ------------------------------------------------------------------ *)
(* Circuit breaker.                                                    *)

let feed_failures t ~clock n =
  for i = 1 to n do
    Admission.note_load_result t ~clock:(clock + i) ~ok:false
  done

let test_breaker_opens_on_consecutive_failures () =
  let t = Admission.create (cfg ~breaker_threshold:3 ()) in
  Admission.batch_begin t;
  feed_failures t ~clock:0 2;
  Alcotest.(check bool)
    "still closed below threshold" true
    (breaker_state t ~clock:2 = `Closed);
  (* a success resets the streak *)
  Admission.note_load_result t ~clock:3 ~ok:true;
  feed_failures t ~clock:3 2;
  Alcotest.(check bool)
    "streak reset by success" true
    (breaker_state t ~clock:5 = `Closed);
  feed_failures t ~clock:5 1;
  Alcotest.(check bool) "opens at threshold" true
    (breaker_state t ~clock:6 = `Open);
  (* open: cold loads shed, hits pass *)
  (match shed t ~clock:7 ~key:"a" ~would_load:true with
  | E.Overloaded _ -> ()
  | e -> Alcotest.failf "wrong error: %s" (E.to_string e));
  ignore (admit t ~clock:8 ~key:"a" ~would_load:false ~label:"hit while open");
  let s = Admission.stats t in
  Alcotest.(check int) "one open" 1 s.Admission.s_breaker_opens;
  Alcotest.(check int) "one breaker shed" 1 s.Admission.s_breaker_sheds

let test_breaker_probe_success_closes () =
  let t = Admission.create (cfg ~breaker_threshold:2 ()) in
  Admission.batch_begin t;
  feed_failures t ~clock:10 2;
  (* opened at clock 12 with the base cooldown *)
  let v = Admission.breaker t ~clock:12 in
  Alcotest.(check int)
    "base cooldown" Admission.breaker_cooldown_base v.Admission.remaining_ticks;
  ignore (shed t ~clock:13 ~key:"a" ~would_load:true ~label:"cooling down");
  (* cooldown elapsed: the next cold load is the half-open probe *)
  let probe =
    admit t
      ~clock:(12 + Admission.breaker_cooldown_base)
      ~key:"a" ~would_load:true ~label:"probe admitted"
  in
  Alcotest.(check bool) "marked as probe" true probe;
  Alcotest.(check bool)
    "half-open while the probe is in flight" true
    (breaker_state t ~clock:29 = `Half_open);
  (* a second cold load during the probe is refused *)
  ignore (shed t ~clock:29 ~key:"b" ~would_load:true ~label:"during probe");
  Admission.note_load_result t ~clock:30 ~ok:true;
  Alcotest.(check bool) "probe success closes" true
    (breaker_state t ~clock:30 = `Closed);
  let v = Admission.breaker t ~clock:30 in
  Alcotest.(check int)
    "cooldown forgiven" Admission.breaker_cooldown_base v.Admission.cooldown;
  ignore (admit t ~clock:31 ~key:"b" ~would_load:true ~label:"closed again")

let test_breaker_probe_failure_doubles_cooldown () =
  let t = Admission.create (cfg ~breaker_threshold:1 ()) in
  Admission.batch_begin t;
  let rec reopen ~clock expected_cooldown n =
    if n > 0 then begin
      let probe = admit t ~clock ~key:"a" ~would_load:true ~label:"probe" in
      Alcotest.(check bool) "is the probe" true probe;
      Admission.note_load_result t ~clock ~ok:false;
      let v = Admission.breaker t ~clock in
      Alcotest.(check bool) "reopened" true (v.Admission.state = `Open);
      Alcotest.(check int)
        (Printf.sprintf "cooldown after reopen %d" n)
        expected_cooldown v.Admission.remaining_ticks;
      reopen
        ~clock:(clock + expected_cooldown)
        (min (2 * expected_cooldown) Admission.breaker_cooldown_max)
        (n - 1)
    end
  in
  (* first failure opens with the base cooldown *)
  Admission.note_load_result t ~clock:0 ~ok:false;
  let v = Admission.breaker t ~clock:0 in
  Alcotest.(check int)
    "base" Admission.breaker_cooldown_base v.Admission.remaining_ticks;
  (* each failed probe doubles: 32, 64, 128, 256, then capped at 256 *)
  reopen
    ~clock:Admission.breaker_cooldown_base
    (2 * Admission.breaker_cooldown_base)
    6

let test_breaker_saturation_opens () =
  let t =
    Admission.create (cfg ~max_queued_loads:1 ~breaker_threshold:5
                        ~breaker_saturation:2 ())
  in
  let saturated_batch ~clock =
    Admission.batch_begin t;
    ignore (admit t ~clock ~key:"a" ~would_load:true ~label:"fills the queue");
    ignore (shed t ~clock:(clock + 1) ~key:"b" ~would_load:true ~label:"sat");
    Admission.note_load_result t ~clock:(clock + 1) ~ok:true;
    Admission.batch_end t ~clock:(clock + 2)
  in
  saturated_batch ~clock:0;
  Alcotest.(check bool)
    "one saturated batch is not enough" true
    (breaker_state t ~clock:3 = `Closed);
  (* an unsaturated batch resets the streak *)
  Admission.batch_begin t;
  ignore (admit t ~clock:4 ~key:"a" ~would_load:false ~label:"calm batch");
  Admission.batch_end t ~clock:5;
  saturated_batch ~clock:6;
  Alcotest.(check bool)
    "streak was reset" true
    (breaker_state t ~clock:9 = `Closed);
  saturated_batch ~clock:10;
  Alcotest.(check bool)
    "two consecutive saturated batches open" true
    (breaker_state t ~clock:13 = `Open)

(* ------------------------------------------------------------------ *)
(* Provability (the prefetch planner's worst-case gate).               *)

let test_provable_worst_case () =
  let t =
    Admission.create (cfg ~deadline:32 ~max_queued_loads:3
                        ~breaker_threshold:4 ())
  in
  Admission.batch_begin t;
  (* budget 32, load 8: group 0 provable with up to 3 earlier groups
     spending a full load each... *)
  Alcotest.(check bool) "0 before" true (Admission.provable t ~groups_before:0);
  Alcotest.(check bool) "2 before" true (Admission.provable t ~groups_before:2);
  (* ...but the queue bound (3) refuses 3 earlier loads *)
  Alcotest.(check bool)
    "3 before hits the queue bound" false
    (Admission.provable t ~groups_before:3);
  (* spend one admitted load: both budget and queue tighten *)
  ignore (admit t ~clock:0 ~key:"a" ~would_load:true);
  Alcotest.(check bool) "1 before after a load" true
    (Admission.provable t ~groups_before:1);
  Alcotest.(check bool)
    "2 before after a load" false
    (Admission.provable t ~groups_before:2);
  (* failures ahead of the group could trip the breaker *)
  feed_failures t ~clock:1 2;
  Alcotest.(check bool)
    "2 failures + 1 before stays under threshold 4" true
    (Admission.provable t ~groups_before:1);
  feed_failures t ~clock:3 1;
  Alcotest.(check bool)
    "3 failures + 1 before could open the breaker" false
    (Admission.provable t ~groups_before:1);
  Alcotest.(check bool)
    "inactive controller proves everything" true
    (Admission.provable (Admission.create Admission.unlimited)
       ~groups_before:1000)

let test_provable_never_lies () =
  (* Exhaustive cross-check on a grid: whenever [provable ~groups_before:g]
     says yes, committing g worst-case groups (cold load, failing) and
     then the group itself must in fact admit it.  This is the exact
     property the planner's bit-identity argument rests on. *)
  List.iter
    (fun (deadline, queue, threshold) ->
      for g = 0 to 5 do
        let t =
          Admission.create
            (cfg ?deadline ?max_queued_loads:queue
               ?breaker_threshold:threshold ())
        in
        Admission.batch_begin t;
        if Admission.provable t ~groups_before:g then begin
          let clock = ref 0 in
          for i = 1 to g do
            (match
               Admission.decide t ~clock:!clock
                 ~key:(Printf.sprintf "ahead%d" i) ~would_load:true
             with
            | Admission.Admit _ -> ()
            | Admission.Shed e ->
                Alcotest.failf
                  "deadline=%s queue=%s k=%s: worst-case group %d/%d shed \
                   (%s) though provable said yes"
                  (match deadline with Some d -> string_of_int d | None -> "-")
                  (match queue with Some q -> string_of_int q | None -> "-")
                  (match threshold with
                  | Some k -> string_of_int k
                  | None -> "-")
                  i g (E.to_string e));
            Admission.note_load_result t ~clock:!clock ~ok:false;
            incr clock
          done;
          match
            Admission.decide t ~clock:!clock ~key:"the-group" ~would_load:true
          with
          | Admission.Admit _ -> ()
          | Admission.Shed e ->
              Alcotest.failf "provable group shed after worst case: %s"
                (E.to_string e)
        end
      done)
    [
      (Some 64, None, None);
      (Some 64, Some 3, None);
      (Some 64, Some 3, Some 4);
      (None, Some 2, Some 2);
      (None, None, Some 6);
      (Some 8, None, Some 1);
    ]

(* ------------------------------------------------------------------ *)
(* Persistence snapshot.                                               *)

let test_breaker_view_restore_reanchors () =
  let t = Admission.create (cfg ~breaker_threshold:2 ()) in
  Admission.batch_begin t;
  feed_failures t ~clock:100 2;
  let v = Admission.breaker t ~clock:102 in
  Alcotest.(check bool) "open at save" true (v.Admission.state = `Open);
  (* restore into a fresh controller whose clock starts at 0: the
     remaining ticks carry over, not the absolute deadline *)
  let t2 = Admission.create (cfg ~breaker_threshold:2 ()) in
  Admission.restore_breaker t2 ~clock:0 v;
  let v2 = Admission.breaker t2 ~clock:0 in
  Alcotest.(check bool) "still open" true (v2.Admission.state = `Open);
  Alcotest.(check int)
    "remaining re-anchored" v.Admission.remaining_ticks
    v2.Admission.remaining_ticks;
  Alcotest.(check int)
    "failure streak carried" v.Admission.consecutive_failures
    v2.Admission.consecutive_failures;
  (* the restored breaker still probes once the cooldown elapses *)
  Admission.batch_begin t2;
  let probe =
    admit t2 ~clock:v.Admission.remaining_ticks ~key:"a" ~would_load:true
      ~label:"restored probe"
  in
  Alcotest.(check bool) "probe after restore" true probe

let test_restore_clamps_cooldown () =
  let t = Admission.create (cfg ~breaker_threshold:1 ()) in
  Admission.restore_breaker t ~clock:0
    {
      Admission.state = `Open;
      remaining_ticks = 5;
      consecutive_failures = 3;
      cooldown = 100_000;
    };
  let v = Admission.breaker t ~clock:0 in
  Alcotest.(check int)
    "cooldown clamped to the cap" Admission.breaker_cooldown_max
    v.Admission.cooldown;
  Admission.restore_breaker t ~clock:0
    {
      Admission.state = `Closed;
      remaining_ticks = 0;
      consecutive_failures = 0;
      cooldown = 1;
    };
  let v = Admission.breaker t ~clock:0 in
  Alcotest.(check int)
    "cooldown clamped to the base" Admission.breaker_cooldown_base
    v.Admission.cooldown

let () =
  Alcotest.run "admission"
    [
      ( "config",
        [
          Alcotest.test_case "inactive admits everything" `Quick
            test_inactive_admits_everything;
          Alcotest.test_case "any limit activates" `Quick
            test_any_limit_activates;
          Alcotest.test_case "create validates" `Quick test_create_validates;
          Alcotest.test_case "policy strings round-trip" `Quick
            test_policy_strings;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "budget spending and exact shortfall" `Quick
            test_deadline_budget_spending;
          Alcotest.test_case "sheds spend nothing" `Quick
            test_deadline_shed_spends_nothing;
          Alcotest.test_case "batch_begin resets the budget" `Quick
            test_batch_begin_resets_budget;
        ] );
      ( "queue",
        [
          Alcotest.test_case "cold-load bound" `Quick test_queue_bound;
          Alcotest.test_case "bound 0 means resident-only" `Quick
            test_queue_bound_zero_is_resident_only;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "opens on consecutive failures" `Quick
            test_breaker_opens_on_consecutive_failures;
          Alcotest.test_case "probe success closes" `Quick
            test_breaker_probe_success_closes;
          Alcotest.test_case "probe failure doubles the cooldown" `Quick
            test_breaker_probe_failure_doubles_cooldown;
          Alcotest.test_case "saturated batches open" `Quick
            test_breaker_saturation_opens;
        ] );
      ( "provable",
        [
          Alcotest.test_case "worst-case bounds" `Quick
            test_provable_worst_case;
          Alcotest.test_case "provable implies admitted" `Quick
            test_provable_never_lies;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "restore re-anchors on the clock" `Quick
            test_breaker_view_restore_reanchors;
          Alcotest.test_case "restore clamps the cooldown" `Quick
            test_restore_clamps_cooldown;
        ] );
    ]
